// Per-backend unit coverage: latency and fee models, capacity behaviour,
// throttle accounting, and the op ledger.
#include "backend/storage_backend.hpp"

#include <gtest/gtest.h>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "sim/calibration.hpp"

namespace flstore::backend {
namespace {

TEST(Throttle, AdmitsBurstThenQueuesAtSustainedRate) {
  Throttle throttle(Throttle::Config{/*ops_per_s=*/10.0, /*burst_ops=*/2.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  // Bucket empty: each further op at the same instant queues 100 ms deeper.
  EXPECT_NEAR(throttle.admit(0.0), 0.1, 1e-12);
  EXPECT_NEAR(throttle.admit(0.0), 0.2, 1e-12);
  // After enough simulated time the bucket refills to its burst depth.
  EXPECT_DOUBLE_EQ(throttle.admit(10.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(10.0), 0.0);
  EXPECT_GT(throttle.admit(10.0), 0.0);
}

TEST(Throttle, DisabledIsFree) {
  Throttle throttle;  // default: ops_per_s = 0
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
}

// --- ObjectStoreBackend ---------------------------------------------------

struct ObjectStoreBackendTest : ::testing::Test {
  ObjectStoreBackendTest()
      : store(sim::objstore_link(), PricingCatalog::aws()), cold(store) {}
  ObjectStore store;
  ObjectStoreBackend cold;
};

TEST_F(ObjectStoreBackendTest, MatchesRawStoreLatenciesAndFees) {
  ObjectStore raw(sim::objstore_link(), PricingCatalog::aws());
  const auto raw_put = raw.put("k", Blob(64), 10 * units::MB);
  const auto put = cold.put("k", Blob(64), 10 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_DOUBLE_EQ(put.latency_s, raw_put.latency_s);
  EXPECT_DOUBLE_EQ(put.request_fee_usd, raw_put.request_fee_usd);

  const auto raw_get = raw.get("k");
  const auto get = cold.get("k", 1.0);
  ASSERT_TRUE(get.found);
  EXPECT_DOUBLE_EQ(get.latency_s, raw_get.latency_s);
  EXPECT_DOUBLE_EQ(get.request_fee_usd, raw_get.request_fee_usd);
  EXPECT_EQ(get.logical_bytes, 10 * units::MB);

  EXPECT_TRUE(cold.contains("k"));
  EXPECT_EQ(cold.stored_logical_bytes(), 10 * units::MB);
  EXPECT_DOUBLE_EQ(cold.idle_cost(3600.0), raw.storage_cost(3600.0));
}

TEST_F(ObjectStoreBackendTest, BatchedPutAmortizesFirstByteCost) {
  constexpr std::size_t kCount = 10;
  double individual = 0.0;
  {
    ObjectStore raw(sim::objstore_link(), PricingCatalog::aws());
    ObjectStoreBackend one_by_one(raw);
    for (std::size_t i = 0; i < kCount; ++i) {
      individual += one_by_one
                        .put(std::to_string(i), Blob(8), 1 * units::MB,
                             0.0)
                        .latency_s;
    }
  }
  std::vector<PutRequest> batch;
  for (std::size_t i = 0; i < kCount; ++i) {
    batch.push_back(PutRequest{std::to_string(i), Blob(8),
                               1 * units::MB});
  }
  const auto res = cold.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, kCount);
  // One alpha instead of ten: strictly faster than the sequential puts.
  EXPECT_LT(res.latency_s, individual);
  const double alpha = sim::objstore_link().first_byte_latency_s;
  EXPECT_NEAR(individual - res.latency_s, (kCount - 1) * alpha, 1e-9);
  // S3 semantics: the request fee stays per object.
  EXPECT_DOUBLE_EQ(res.request_fee_usd,
                   kCount * PricingCatalog::aws().s3_usd_per_put);
  const auto stats = cold.stats();
  EXPECT_EQ(stats.batches, 1U);
  EXPECT_EQ(stats.puts, kCount);
  EXPECT_EQ(stats.bytes_written, kCount * 1 * units::MB);
}

TEST(ObjectStoreBackendThrottled, ThrottleSurfacesAsLatency) {
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend::Config cfg;
  cfg.throttle = Throttle::Config{/*ops_per_s=*/1.0, /*burst_ops=*/1.0};
  ObjectStoreBackend cold(store, cfg);
  store.put("k", Blob(8), 1 * units::MB);

  const auto first = cold.get("k", 0.0);
  const auto second = cold.get("k", 0.0);  // same instant: bucket is empty
  EXPECT_DOUBLE_EQ(first.latency_s, second.latency_s - 1.0);
  const auto stats = cold.stats();
  EXPECT_EQ(stats.throttled_ops, 1U);
  EXPECT_NEAR(stats.throttle_wait_s, 1.0, 1e-9);
}

// --- CloudCacheBackend ----------------------------------------------------

TEST(CloudCacheBackendTest, MillisecondAccessNoRequestFees) {
  CloudCacheBackend::Config cfg;
  cfg.link = sim::cloudcache_link();
  CloudCacheBackend cold(cfg, PricingCatalog::aws());
  const auto put = cold.put("k", Blob(8), 10 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_DOUBLE_EQ(put.request_fee_usd, 0.0);  // node-hours, not request fees
  const auto get = cold.get("k", 1.0);
  ASSERT_TRUE(get.found);
  EXPECT_DOUBLE_EQ(get.request_fee_usd, 0.0);
  EXPECT_DOUBLE_EQ(get.latency_s,
                   sim::cloudcache_link().transfer_time(10 * units::MB));
  // Far faster than the object store path for the same object.
  EXPECT_LT(get.latency_s,
            sim::objstore_link().transfer_time(10 * units::MB));
}

TEST(CloudCacheBackendTest, AutoScaleGrowsNodesAndIdleBill) {
  CloudCacheBackend::Config cfg;
  CloudCacheBackend cold(cfg, PricingCatalog::aws());
  EXPECT_EQ(cold.nodes(), 1);
  const double one_node_hour = cold.idle_cost(3600.0);
  EXPECT_DOUBLE_EQ(one_node_hour,
                   PricingCatalog::aws().cache_nodes_cost(1, 3600.0));
  // Two node-capacities of data: the fleet must grow to three nodes.
  const auto node = PricingCatalog::aws().cache_node_capacity;
  cold.put("a", Blob(8), node, 0.0);
  cold.put("b", Blob(8), node, 0.0);
  EXPECT_GE(cold.nodes(), 2);
  EXPECT_GT(cold.idle_cost(3600.0), one_node_hour);
  EXPECT_EQ(cold.evictions(), 0U);
}

TEST(CloudCacheBackendTest, FixedFleetEvictsLruAndLosesData) {
  CloudCacheBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.nodes = 1;
  CloudCacheBackend cold(cfg, PricingCatalog::aws());
  const auto half = PricingCatalog::aws().cache_node_capacity / 2;
  cold.put("old", Blob(8), half, 0.0);
  cold.put("mid", Blob(8), half, 1.0);
  cold.get("old", 2.0);  // touch: "mid" becomes the LRU victim
  cold.put("new", Blob(8), half, 3.0);
  EXPECT_EQ(cold.evictions(), 1U);
  EXPECT_TRUE(cold.contains("old"));
  EXPECT_FALSE(cold.contains("mid"));  // durability hazard of a lone cache
  EXPECT_TRUE(cold.contains("new"));
  // An object that can never fit is rejected outright.
  const auto rejected =
      cold.put("huge", Blob(8), 2 * PricingCatalog::aws().cache_node_capacity,
               4.0);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(cold.stats().rejected_puts, 1U);
}

TEST(CloudCacheBackendTest, RejectedOverwritePreservesTheStoredVersion) {
  CloudCacheBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.nodes = 1;
  CloudCacheBackend cold(cfg, PricingCatalog::aws());
  cold.put("k", Blob{1, 2, 3}, 4 * units::MB, 0.0);
  // Overwriting with an object that can never fit must fail *without*
  // destroying what is already stored.
  const auto rejected = cold.put(
      "k", Blob(8), 2 * PricingCatalog::aws().cache_node_capacity, 1.0);
  EXPECT_FALSE(rejected.accepted);
  const auto got = cold.get("k", 2.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(*got.blob, (Blob{1, 2, 3}));
  EXPECT_EQ(got.logical_bytes, 4 * units::MB);
}

// --- LocalSsdBackend ------------------------------------------------------

TEST(LocalSsdBackendTest, MicrosecondLatencyProvisionedBilling) {
  LocalSsdBackend::Config cfg;
  cfg.link = sim::local_ssd_link();
  LocalSsdBackend cold(cfg, PricingCatalog::aws());
  cold.put("k", Blob(8), 161 * units::MB, 0.0);
  const auto get = cold.get("k", 1.0);
  ASSERT_TRUE(get.found);
  EXPECT_DOUBLE_EQ(get.request_fee_usd, 0.0);
  // A model checkpoint in well under a second (vs ~20 s from the store).
  EXPECT_LT(get.latency_s, 0.2);
  EXPECT_DOUBLE_EQ(cold.idle_cost(3600.0),
                   PricingCatalog::aws().ssd_devices_cost(1, 3600.0));
  // The device bills provisioned capacity whether or not it holds data.
  LocalSsdBackend empty(cfg, PricingCatalog::aws());
  EXPECT_DOUBLE_EQ(empty.idle_cost(3600.0), cold.idle_cost(3600.0));
}

TEST(LocalSsdBackendTest, FixedFleetRejectsOverCapacity) {
  LocalSsdBackend::Config cfg;
  cfg.auto_scale = false;
  LocalSsdBackend cold(cfg, PricingCatalog::aws());
  const auto device = PricingCatalog::aws().ssd_device_capacity;
  EXPECT_TRUE(cold.put("a", Blob(8), device, 0.0).accepted);
  const auto rejected = cold.put("b", Blob(8), 1 * units::MB, 1.0);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(cold.contains("b"));
  EXPECT_EQ(cold.stats().rejected_puts, 1U);
  EXPECT_EQ(cold.capacity_bytes(), device);
}

TEST(LocalSsdBackendTest, AutoScaleProvisionsAnotherDevice) {
  LocalSsdBackend::Config cfg;
  LocalSsdBackend cold(cfg, PricingCatalog::aws());
  const auto device = PricingCatalog::aws().ssd_device_capacity;
  EXPECT_TRUE(cold.put("a", Blob(8), device, 0.0).accepted);
  EXPECT_TRUE(cold.put("b", Blob(8), 1 * units::MB, 1.0).accepted);
  EXPECT_EQ(cold.devices(), 2);
  EXPECT_DOUBLE_EQ(cold.idle_cost(3600.0),
                   PricingCatalog::aws().ssd_devices_cost(2, 3600.0));
}

TEST(LocalSsdBackendTest, BatchedPutAdmitsOnceAndChargesTheWait) {
  LocalSsdBackend::Config cfg;
  cfg.throttle = Throttle::Config{/*ops_per_s=*/10.0, /*burst_ops=*/1.0};
  LocalSsdBackend cold(cfg, PricingCatalog::aws());
  std::vector<PutRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(PutRequest{std::to_string(i), Blob(8), 1 * units::MB});
  }
  (void)cold.put("warmup", Blob(8), 1 * units::MB, 0.0);  // drain the bucket
  const auto res = cold.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 4U);
  // One admission for the whole batch — its wait lands on the batch
  // latency instead of vanishing.
  EXPECT_EQ(cold.stats().throttled_ops, 1U);
  EXPECT_GE(res.latency_s, cold.stats().throttle_wait_s);
}

// --- batch-put latency contract (every leaf backend) ----------------------
// PutResult documents that a refused write still pays its transfer latency:
// the bytes travelled before the rejection. put_batch must honour the same
// contract — the batched stream covers every *attempted* byte, not just the
// accepted ones (regression: both bounded backends used to charge accepted
// bytes only, making a full backend look instantaneous to write to).

struct BatchContractCase {
  const char* label;
  /// Builds a backend; bounded kinds reject `huge_bytes()` outright.
  std::unique_ptr<StorageBackend> (*make)();
  Link link;
  bool rejects;  ///< whether the huge item is refused (object store scales)
};

units::Bytes huge_bytes() {
  return 4 * PricingCatalog::aws().cache_node_capacity;
}

const BatchContractCase kBatchContractCases[] = {
    {"cloud-cache",
     +[]() -> std::unique_ptr<StorageBackend> {
       CloudCacheBackend::Config cfg;
       cfg.auto_scale = false;
       cfg.nodes = 1;
       cfg.link = sim::cloudcache_link();
       return std::make_unique<CloudCacheBackend>(cfg, PricingCatalog::aws());
     },
     sim::cloudcache_link(), true},
    {"local-ssd",
     +[]() -> std::unique_ptr<StorageBackend> {
       LocalSsdBackend::Config cfg;
       cfg.auto_scale = false;
       cfg.link = sim::local_ssd_link();
       auto cold = std::make_unique<LocalSsdBackend>(cfg,
                                                     PricingCatalog::aws());
       // Fill the single device so further puts are refused.
       cold->put("filler", Blob{1},
                 PricingCatalog::aws().ssd_device_capacity, 0.0);
       return cold;
     },
     sim::local_ssd_link(), true},
    {"object-store",
     +[]() -> std::unique_ptr<StorageBackend> {
       static ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
       return std::make_unique<ObjectStoreBackend>(store);
     },
     sim::objstore_link(), false},
};

class BatchRejectionLatency
    : public ::testing::TestWithParam<BatchContractCase> {};

TEST_P(BatchRejectionLatency, RefusedItemsStillPayTheirTransfer) {
  const auto& param = GetParam();
  auto cold = param.make();
  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"accepted-or-not", Blob{1}, 1 * units::MB});
  batch.push_back(PutRequest{"huge", Blob{2}, huge_bytes()});
  const auto res = cold->put_batch(std::move(batch), 0.0);
  if (param.rejects) {
    EXPECT_LT(res.stored, 2U) << param.label;
    EXPECT_GT(cold->stats().rejected_puts, 0U) << param.label;
  } else {
    EXPECT_EQ(res.stored, 2U) << param.label;
  }
  // The stream time covers all attempted bytes either way.
  EXPECT_NEAR(res.latency_s,
              param.link.transfer_time(1 * units::MB + huge_bytes()), 1e-9)
      << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchRejectionLatency,
    ::testing::ValuesIn(kBatchContractCases),
    [](const ::testing::TestParamInfo<BatchContractCase>& info) {
      std::string name = info.param.label;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LocalSsdBackendTest, RemoveReleasesBytes) {
  LocalSsdBackend::Config cfg;
  LocalSsdBackend cold(cfg, PricingCatalog::aws());
  cold.put("k", Blob(8), 5 * units::MB, 0.0);
  EXPECT_EQ(cold.stored_logical_bytes(), 5 * units::MB);
  EXPECT_TRUE(cold.remove("k", 1.0));
  EXPECT_FALSE(cold.remove("k", 1.0));
  EXPECT_EQ(cold.stored_logical_bytes(), 0U);
  EXPECT_FALSE(cold.contains("k"));
}

}  // namespace
}  // namespace flstore::backend
