// FLStore (and the serving plane) over each cold backend: swapping the
// data plane requires zero changes at the core/serve call sites, serving
// still works end to end, and the miss-path latency ordering matches the
// hardware story (SSD < cloud cache < object store).
#include <gtest/gtest.h>

#include <memory>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "backend/replicated_cold_store.hpp"
#include "backend/tiered_cold_store.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "serve/sharded_store.hpp"
#include "sim/calibration.hpp"
#include "sim/scenario.hpp"

namespace flstore {
namespace {

fed::FLJobConfig small_job() {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 30;
  cfg.clients_per_round = 6;
  cfg.rounds = 20;
  cfg.seed = 5;
  return cfg;
}

fed::NonTrainingRequest inference(RequestId id, RoundId round) {
  fed::NonTrainingRequest req;
  req.id = id;
  req.type = fed::WorkloadType::kInference;
  req.round = round;
  return req;
}

/// FLStore with the serverless cache effectively disabled (capacity one
/// byte: nothing fits), so every request runs against the cold backend.
core::ServeResult serve_cold(backend::StorageBackend& cold,
                             const fed::FLJob& job) {
  core::FLStoreConfig cfg;
  cfg.policy.mode = core::PolicyMode::kLru;
  cfg.cache_capacity = 1;
  core::FLStore fl(cfg, job, cold);
  fl.ingest_round(job.make_round(0), 0.0);
  return fl.serve(inference(1, 0), 10.0);
}

TEST(FLStoreBackends, ServesOverEveryBackendAndOrdersByHardware) {
  fed::FLJob job(small_job());
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  backend::ObjectStoreBackend objstore(store);
  backend::CloudCacheBackend::Config cache_cfg;
  cache_cfg.link = sim::cloudcache_link();
  backend::CloudCacheBackend cloudcache(cache_cfg, PricingCatalog::aws());
  backend::LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  backend::LocalSsdBackend ssd(ssd_cfg, PricingCatalog::aws());

  const auto via_objstore = serve_cold(objstore, job);
  const auto via_cloudcache = serve_cold(cloudcache, job);
  const auto via_ssd = serve_cold(ssd, job);

  for (const auto* res : {&via_objstore, &via_cloudcache, &via_ssd}) {
    EXPECT_EQ(res->misses, 1U);
    EXPECT_FALSE(res->output.summary.empty());
    EXPECT_GT(res->cost_usd, 0.0);
  }
  // Identical request, identical compute; only the data plane differs.
  EXPECT_DOUBLE_EQ(via_objstore.comp_s, via_ssd.comp_s);
  EXPECT_LT(via_ssd.comm_s, via_cloudcache.comm_s);
  EXPECT_LT(via_cloudcache.comm_s, via_objstore.comm_s);
  // Blocked-function time follows, so cost orders the same way.
  EXPECT_LT(via_ssd.cost_usd, via_cloudcache.cost_usd);
  EXPECT_LT(via_cloudcache.cost_usd, via_objstore.cost_usd);
}

TEST(FLStoreBackends, TieredStackBehindFLStoreServesFromTheFastTier) {
  fed::FLJob job(small_job());
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  backend::ObjectStoreBackend deep(store);
  backend::LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  backend::LocalSsdBackend ssd(ssd_cfg, PricingCatalog::aws());
  backend::TieredColdStore tiered({&ssd, &deep});

  const auto res = serve_cold(tiered, job);
  EXPECT_EQ(res.misses, 1U);
  // Ingest wrote through both tiers; the miss fetch hit the SSD, never the
  // object store.
  EXPECT_EQ(store.get_count(), 0U);
  EXPECT_GT(store.put_count(), 0U);
  EXPECT_LT(res.comm_s, 1.0);
}

TEST(FLStoreBackends, IngestDrainsWriteBackTieredStackToDurableTier) {
  // FLStore over a write-back tiered stack: every ingest must leave the
  // round durable in the deepest tier (FLStore drives the backend flush),
  // so fast-tier churn can never lose a backed-up object.
  fed::FLJob job(small_job());
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  backend::ObjectStoreBackend deep(store);
  backend::CloudCacheBackend::Config cache_cfg;
  cache_cfg.link = sim::cloudcache_link();
  backend::CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  backend::TieredColdStore::Config tiered_cfg;
  tiered_cfg.write_mode = backend::TieredColdStore::WriteMode::kWriteBack;
  backend::TieredColdStore tiered({&fast, &deep}, tiered_cfg);

  core::FLStoreConfig cfg;
  core::FLStore fl(cfg, job, tiered);
  fl.ingest_round(job.make_round(0), 0.0);
  EXPECT_EQ(tiered.dirty_count(), 0U);  // drained at end of ingest
  for (const auto c : job.participants(0)) {
    EXPECT_TRUE(store.contains(MetadataKey::update(c, 0).object_name()));
  }
  EXPECT_TRUE(store.contains(MetadataKey::aggregate(0).object_name()));
  // The drain's deep-tier PUT fees reached FLStore's meter: one S3 PUT per
  // round object, same as the write-through/inline path would pay.
  EXPECT_DOUBLE_EQ(
      fl.infra_meter().get(CostCategory::kStorageService),
      static_cast<double>(store.put_count()) *
          PricingCatalog::aws().s3_usd_per_put);
}

TEST(FLStoreBackends, ShardedStoreAcceptsAnyBackend) {
  fed::FLJob job(small_job());
  backend::CloudCacheBackend::Config cache_cfg;
  cache_cfg.link = sim::cloudcache_link();
  backend::CloudCacheBackend cloudcache(cache_cfg, PricingCatalog::aws());

  serve::ShardedStoreConfig cfg;
  cfg.worker_threads = 0;
  serve::ShardedStore plane(cloudcache, cfg);
  const auto tenant = plane.add_tenant(job);
  plane.ingest_round(tenant, job.make_round(0), 0.0);

  serve::ServiceRequest req;
  req.tenant = tenant;
  req.request = inference(1, 0);
  const auto res = plane.serve(req, 10.0);
  EXPECT_FALSE(res.output.summary.empty());
  // The tenant's cold namespace landed on the cache backend.
  EXPECT_GT(cloudcache.stored_logical_bytes(), 0U);
}

TEST(FLStoreBackends, ScenarioBuildsReplicatedColdBackend) {
  sim::ScenarioConfig cfg;
  cfg.rounds = 5;
  cfg.total_requests = 10;
  cfg.duration_s = 1000.0;
  cfg.pool_size = 20;
  cfg.clients_per_round = 4;
  cfg.cold_replication.regions = 3;
  sim::Scenario sc(cfg);
  EXPECT_EQ(sc.cold_backend().kind(), backend::BackendKind::kReplicated);
  auto* repl =
      dynamic_cast<backend::ReplicatedColdStore*>(&sc.cold_backend());
  ASSERT_NE(repl, nullptr);
  EXPECT_EQ(repl->region_count(), 3U);
  EXPECT_EQ(repl->write_quorum(), 2);

  // Serving works unchanged through the replicated seam, and the round
  // backup fanned out across regions (cross-region bytes billed).
  sc.flstore().ingest_round(sc.job().make_round(0), 0.0);
  const auto res = sc.flstore().serve(inference(1, 0), 10.0);
  EXPECT_FALSE(res.output.summary.empty());
  EXPECT_GT(repl->egress_fees_usd(), 0.0);
  for (std::size_t i = 0; i < repl->region_count(); ++i) {
    EXPECT_GT(repl->region_backend(i).stored_logical_bytes(), 0U) << i;
  }
}

TEST(FLStoreBackends, ScenarioBuildsEveryColdBackendKind) {
  sim::ScenarioConfig cfg;
  cfg.rounds = 5;
  cfg.total_requests = 10;
  cfg.duration_s = 1000.0;
  cfg.pool_size = 20;
  cfg.clients_per_round = 4;
  for (const auto kind :
       {backend::BackendKind::kObjectStore, backend::BackendKind::kCloudCache,
        backend::BackendKind::kLocalSsd}) {
    cfg.cold_backend = kind;
    sim::Scenario sc(cfg);
    EXPECT_EQ(sc.cold_backend().kind(), kind);
    sc.flstore().ingest_round(sc.job().make_round(0), 0.0);
    const auto res = sc.flstore().serve(inference(1, 0), 10.0);
    EXPECT_FALSE(res.output.summary.empty());
  }
}

}  // namespace
}  // namespace flstore
