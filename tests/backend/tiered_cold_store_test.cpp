// TieredColdStore: fallback probe order, promotion, write-through vs
// write-back (and the flush that drains it), and aggregate accounting.
#include "backend/tiered_cold_store.hpp"

#include <gtest/gtest.h>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "sim/calibration.hpp"

namespace flstore::backend {
namespace {

struct TieredFixture : ::testing::Test {
  TieredFixture()
      : store(sim::objstore_link(), PricingCatalog::aws()),
        deep(store),
        ssd(ssd_config(), PricingCatalog::aws()) {}

  static LocalSsdBackend::Config ssd_config() {
    LocalSsdBackend::Config cfg;
    cfg.link = sim::local_ssd_link();
    return cfg;
  }

  TieredColdStore make(TieredColdStore::Config cfg = {}) {
    return TieredColdStore({&ssd, &deep}, cfg);
  }

  ObjectStore store;
  ObjectStoreBackend deep;
  LocalSsdBackend ssd;
};

TEST_F(TieredFixture, FallbackProbesTiersInOrder) {
  // Object only in the deep tier: the read pays the SSD's miss probe plus
  // the store's full transfer.
  store.put("k", Blob(64), 10 * units::MB);
  auto tiered = make();
  const auto got = tiered.get("k", 0.0);
  ASSERT_TRUE(got.found);
  const double expected = sim::local_ssd_link().first_byte_latency_s +
                          sim::objstore_link().transfer_time(10 * units::MB);
  EXPECT_NEAR(got.latency_s, expected, 1e-9);
  EXPECT_DOUBLE_EQ(got.request_fee_usd, PricingCatalog::aws().s3_usd_per_get);

  // Promotion happened: the next read hits the SSD and never pays the
  // object store's round trip again.
  EXPECT_TRUE(ssd.contains("k"));
  const auto again = tiered.get("k", 100.0);
  ASSERT_TRUE(again.found);
  EXPECT_NEAR(again.latency_s,
              sim::local_ssd_link().transfer_time(10 * units::MB), 1e-9);
  EXPECT_DOUBLE_EQ(again.request_fee_usd, 0.0);
}

TEST_F(TieredFixture, PromotionCanBeDisabled) {
  store.put("k", Blob(64), 10 * units::MB);
  TieredColdStore::Config cfg;
  cfg.promote_on_hit = false;
  auto tiered = make(cfg);
  ASSERT_TRUE(tiered.get("k", 0.0).found);
  EXPECT_FALSE(ssd.contains("k"));
}

TEST_F(TieredFixture, WriteThroughLandsInEveryTier) {
  auto tiered = make();
  const auto put = tiered.put("k", Blob{1, 2, 3}, 8 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_TRUE(ssd.contains("k"));
  EXPECT_TRUE(deep.contains("k"));
  EXPECT_EQ(tiered.dirty_count(), 0U);
  // The caller waits only for the fastest accepting stream.
  EXPECT_NEAR(put.latency_s,
              sim::local_ssd_link().transfer_time(8 * units::MB), 1e-9);
  // ... but the object store's PUT fee is real.
  EXPECT_DOUBLE_EQ(put.request_fee_usd, PricingCatalog::aws().s3_usd_per_put);
}

TEST_F(TieredFixture, WriteBackDefersDeepTiersUntilFlush) {
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  auto tiered = make(cfg);

  const Blob payload{7, 7, 7, 7};
  const auto put = tiered.put("k", Blob(payload), 8 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_DOUBLE_EQ(put.request_fee_usd, 0.0);  // no store PUT yet
  EXPECT_TRUE(ssd.contains("k"));
  EXPECT_FALSE(deep.contains("k"));
  EXPECT_EQ(tiered.dirty_count(), 1U);
  EXPECT_TRUE(tiered.contains("k"));  // the composition still serves it

  EXPECT_EQ(tiered.flush(1.0).drained, 1U);
  EXPECT_EQ(tiered.dirty_count(), 0U);
  ASSERT_TRUE(deep.contains("k"));
  // Byte-identical drain.
  const auto drained = deep.get("k", 2.0);
  ASSERT_TRUE(drained.found);
  EXPECT_EQ(*drained.blob, payload);
  EXPECT_EQ(drained.logical_bytes, 8 * units::MB);
  // Nothing further to drain.
  EXPECT_EQ(tiered.flush(3.0).drained, 0U);
}

TEST_F(TieredFixture, RemoveDropsEveryCopy) {
  auto tiered = make();
  tiered.put("k", Blob(8), 1 * units::MB, 0.0);
  EXPECT_TRUE(tiered.remove("k", 1.0));
  EXPECT_FALSE(ssd.contains("k"));
  EXPECT_FALSE(deep.contains("k"));
  EXPECT_FALSE(tiered.contains("k"));
  EXPECT_FALSE(tiered.remove("k", 2.0));
}

TEST_F(TieredFixture, IdleCostSumsProvisionedTiers) {
  auto tiered = make();
  tiered.put("k", Blob(8), 1 * units::MB, 0.0);
  EXPECT_DOUBLE_EQ(tiered.idle_cost(3600.0),
                   ssd.idle_cost(3600.0) + deep.idle_cost(3600.0));
  EXPECT_EQ(tiered.stored_logical_bytes(), deep.stored_logical_bytes());
  EXPECT_EQ(tiered.kind(), BackendKind::kTiered);
  EXPECT_EQ(tiered.name(), "tiered(local-ssd -> object-store)");
}

TEST_F(TieredFixture, BatchedWriteBackDrainsThroughBatchedPuts) {
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  auto tiered = make(cfg);
  std::vector<PutRequest> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(
        PutRequest{std::to_string(i), Blob(8), 1 * units::MB});
  }
  const auto res = tiered.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 5U);
  EXPECT_EQ(tiered.dirty_count(), 5U);
  EXPECT_EQ(store.put_count(), 0U);
  EXPECT_EQ(tiered.flush(1.0).drained, 5U);
  EXPECT_EQ(store.put_count(), 5U);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(deep.contains(std::to_string(i)));
  }
}

TEST(TieredWriteBackRejection, FastTierRefusalFallsThroughToDurableTier) {
  // Fixed 1-node cloud cache as the fast tier: objects larger than the
  // fleet are refused there — they must still land in the object store,
  // both on the single-put and the batched path.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&fast, &deep}, cfg);

  const auto huge = 2 * PricingCatalog::aws().cache_node_capacity;
  const auto put = tiered.put("big", Blob{9, 9}, huge, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_FALSE(fast.contains("big"));
  EXPECT_TRUE(deep.contains("big"));
  EXPECT_EQ(tiered.dirty_count(), 0U);  // nothing to drain: it went deep

  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"small", Blob{1}, 1 * units::MB});
  batch.push_back(PutRequest{"big2", Blob{2}, huge});
  const auto res = tiered.put_batch(std::move(batch), 1.0);
  EXPECT_EQ(res.stored, 2U);
  ASSERT_EQ(res.accepted.size(), 2U);
  EXPECT_TRUE(res.accepted[0]);
  EXPECT_TRUE(res.accepted[1]);
  EXPECT_TRUE(fast.contains("small"));
  EXPECT_FALSE(fast.contains("big2"));
  EXPECT_TRUE(deep.contains("big2"));  // rejected item wrote through
  EXPECT_EQ(tiered.dirty_count(), 1U);  // only "small" waits for flush()
  EXPECT_EQ(tiered.flush(2.0).drained, 1U);
  EXPECT_TRUE(deep.contains("small"));
}

TEST(TieredStaleInvalidation, RejectedOverwriteDropsTheOldFastTierCopy) {
  // v1 fits the fixed cloud cache; v2 does not and falls through to the
  // object store. The cache's v1 must be invalidated, or every read would
  // serve stale bytes (and write-back flush would drain v1 over v2).
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  const auto huge = 2 * PricingCatalog::aws().cache_node_capacity;
  for (const auto mode : {TieredColdStore::WriteMode::kWriteThrough,
                          TieredColdStore::WriteMode::kWriteBack}) {
    CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
    TieredColdStore::Config cfg;
    cfg.write_mode = mode;
    cfg.promote_on_hit = false;
    TieredColdStore tiered({&fast, &deep}, cfg);
    ASSERT_TRUE(tiered.put("k", Blob{1}, 1 * units::MB, 0.0).accepted);
    (void)tiered.flush(0.5);
    ASSERT_TRUE(tiered.put("k", Blob{2}, huge, 1.0).accepted);
    EXPECT_FALSE(fast.contains("k"));  // stale v1 dropped
    const auto got = tiered.get("k", 2.0);
    ASSERT_TRUE(got.found);
    EXPECT_EQ(*got.blob, Blob{2});
    EXPECT_EQ(got.logical_bytes, huge);
    EXPECT_EQ(tiered.flush(3.0).drained, 0U);  // nothing stale left to drain
    const auto still = deep.get("k", 4.0);
    ASSERT_TRUE(still.found);
    EXPECT_EQ(*still.blob, Blob{2});
  }
}

TEST(TieredWriteBackMiddleTier, MiddleTierAcceptanceIsStillDirty) {
  // Three tiers: a *full* fixed SSD, a cloud cache, the object store. A
  // write the SSD refuses lands in the middle cache — and must still be
  // owed to the object store, or the cache's next eviction loses it.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.auto_scale = false;
  LocalSsdBackend full_ssd(ssd_cfg, PricingCatalog::aws());
  ASSERT_TRUE(full_ssd
                  .put("filler", Blob(8),
                       PricingCatalog::aws().ssd_device_capacity, 0.0)
                  .accepted);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend middle(cache_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&full_ssd, &middle, &deep}, cfg);

  const auto put = tiered.put("x", Blob{5}, 1 * units::MB, 1.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_FALSE(full_ssd.contains("x"));
  EXPECT_TRUE(middle.contains("x"));
  EXPECT_FALSE(deep.contains("x"));
  EXPECT_EQ(tiered.dirty_count(), 1U);  // middle tier is not durable

  EXPECT_EQ(tiered.flush(2.0).drained, 1U);
  EXPECT_TRUE(deep.contains("x"));
  EXPECT_EQ(tiered.dirty_count(), 0U);
}

TEST(TieredWriteBackEviction, EvictedDirtyObjectIsCountedNotSilent) {
  // A fixed 1-node cache as the write-back fast tier: enough churn evicts
  // a dirty object before any flush. The bytes are gone (the crash
  // window); the composition must count it, not pretend the drain was
  // complete.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&fast, &deep}, cfg);

  const auto half = PricingCatalog::aws().cache_node_capacity / 2;
  ASSERT_TRUE(tiered.put("victim", Blob{1}, half, 0.0).accepted);
  ASSERT_TRUE(tiered.put("a", Blob{2}, half, 1.0).accepted);
  ASSERT_TRUE(tiered.put("b", Blob{3}, half, 2.0).accepted);  // evicts victim
  ASSERT_FALSE(fast.contains("victim"));
  EXPECT_EQ(tiered.flush(3.0).drained, 2U);  // a + b drained
  EXPECT_EQ(tiered.dropped_dirty_count(), 1U);
  EXPECT_EQ(tiered.dirty_count(), 0U);
}

TEST(TieredWriteBackFlushRejection, RefusedDrainStaysDirtyForRetry) {
  // Deepest tier full and fixed: the drain is refused — the object must
  // stay dirty (and alive in the fast tier) so a later flush can retry,
  // not silently vanish from the dirty set.
  LocalSsdBackend::Config deep_cfg;
  deep_cfg.auto_scale = false;
  LocalSsdBackend full_deep(deep_cfg, PricingCatalog::aws());
  ASSERT_TRUE(full_deep
                  .put("filler", Blob(8),
                       PricingCatalog::aws().ssd_device_capacity, 0.0)
                  .accepted);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&fast, &full_deep}, cfg);

  ASSERT_TRUE(tiered.put("y", Blob{6}, 1 * units::MB, 1.0).accepted);
  EXPECT_EQ(tiered.dirty_count(), 1U);
  EXPECT_EQ(tiered.flush(2.0).drained, 0U);    // deepest tier refused the drain
  EXPECT_EQ(tiered.dirty_count(), 1U);  // still owed — retried next flush
  EXPECT_TRUE(tiered.get("y", 3.0).found);
}

TEST(TieredPromotionOrdering, PromotionAdmitsAtReadCompletionNotIssueTime) {
  // Regression: the promotion put used to be stamped at `now`, letting it
  // consume a fast-tier throttle token *before* the deep-tier read that
  // produces its bytes had completed — promotions jumped the throttle
  // queue ahead of the request that caused them.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  ssd_cfg.throttle = Throttle::Config{/*ops_per_s=*/1.0, /*burst_ops=*/2.0};
  LocalSsdBackend fast(ssd_cfg, PricingCatalog::aws());
  store.put("k", Blob(64), 10 * units::MB);
  TieredColdStore tiered({&fast, &deep});

  const auto got = tiered.get("k", 0.0);  // probe takes one of two tokens
  ASSERT_TRUE(got.found);
  const double read_done = got.latency_s;  // ~1.4 s deep-tier transfer
  ASSERT_GT(read_done, 1.0);
  EXPECT_TRUE(fast.contains("k"));  // promotion did land

  // An op issued at 0.5 — after the get was issued, before its deep read
  // completed — must find the second token free: the promotion's token is
  // only consumed at read-completion time, behind this op.
  const auto mid = fast.get("unrelated", 0.5);
  EXPECT_NEAR(mid.latency_s, sim::local_ssd_link().first_byte_latency_s,
              1e-12);
  EXPECT_EQ(fast.stats().throttled_ops, 0U);
  EXPECT_DOUBLE_EQ(fast.stats().throttle_wait_s, 0.0);
}

TEST(TieredOccupancy, DirtyResidentsCountInStoredLogicalBytes) {
  // Regression: occupancy used to report only the deepest tier, so a
  // write-back store with un-flushed objects claimed zero resident bytes
  // while dirty_count() was nonzero.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  LocalSsdBackend fast(ssd_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&fast, &deep}, cfg);

  ASSERT_TRUE(tiered.put("a", Blob{1}, 3 * units::MB, 0.0).accepted);
  ASSERT_TRUE(tiered.put("b", Blob{2}, 2 * units::MB, 1.0).accepted);
  EXPECT_EQ(tiered.dirty_count(), 2U);
  EXPECT_EQ(deep.stored_logical_bytes(), 0U);
  EXPECT_EQ(tiered.stored_logical_bytes(), 5 * units::MB);

  // Draining moves the bytes to the deep tier without double counting.
  EXPECT_EQ(tiered.flush(2.0).drained, 2U);
  EXPECT_EQ(tiered.stored_logical_bytes(), 5 * units::MB);

  // An overwritten object keeps its (stale) deep-tier copy until flush, so
  // the deduplicated count stays at the deep version's size until the
  // drain replaces it with the new one.
  ASSERT_TRUE(tiered.put("a", Blob{3}, 4 * units::MB, 3.0).accepted);
  EXPECT_EQ(tiered.stored_logical_bytes(), 5 * units::MB);
  EXPECT_EQ(tiered.flush(4.0).drained, 1U);
  EXPECT_EQ(tiered.stored_logical_bytes(), 6 * units::MB);
}

TEST(TieredOccupancy, CapacityReflectsTheWriteMode) {
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.auto_scale = false;
  ssd_cfg.link = sim::local_ssd_link();
  LocalSsdBackend deep(ssd_cfg, PricingCatalog::aws());

  // Write-through: durability is authoritative in the deepest tier.
  TieredColdStore through({&fast, &deep});
  EXPECT_EQ(through.capacity_bytes(), deep.capacity_bytes());

  // Write-back: distinct objects can be resident in different tiers.
  TieredColdStore::Config wb;
  wb.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore back({&fast, &deep}, wb);
  EXPECT_EQ(back.capacity_bytes(),
            fast.capacity_bytes() + deep.capacity_bytes());

  // Any auto-scaling tier makes the write-back composition unbounded.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend unbounded(store);
  TieredColdStore open({&fast, &unbounded}, wb);
  EXPECT_EQ(open.capacity_bytes(), 0U);
}

TEST(TieredLedger, InvalidationOnlyRemovesFromTiersThatHoldACopy) {
  // Regression: write-through used to call remove() on a tier for every
  // item the tier rejected — including items that tier never held,
  // inflating its OpStats::removes ledger.
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  TieredColdStore tiered({&fast, &deep});

  const auto huge = 2 * PricingCatalog::aws().cache_node_capacity;
  // Fresh writes the cache refuses: no copy to invalidate, so no remove.
  ASSERT_TRUE(tiered.put("huge-single", Blob{1}, huge, 0.0).accepted);
  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"huge-batch", Blob{2}, huge});
  batch.push_back(PutRequest{"small", Blob{3}, 1 * units::MB});
  const auto res = tiered.put_batch(std::move(batch), 1.0);
  EXPECT_EQ(res.stored, 2U);
  EXPECT_EQ(fast.stats().removes, 0U);

  // An overwrite the cache refuses *does* invalidate its stale copy —
  // exactly one remove, for exactly the object it held.
  ASSERT_TRUE(fast.contains("small"));
  ASSERT_TRUE(tiered.put("small", Blob{4}, huge, 2.0).accepted);
  EXPECT_FALSE(fast.contains("small"));
  EXPECT_EQ(fast.stats().removes, 1U);
}

TEST(TieredWriteBackPromotionEviction, PromotionEvictingDirtyIsCounted) {
  // A promotion into a bounded write-back fast tier can LRU-evict a
  // *dirty* object: the un-flushed bytes are gone, and the crash window
  // must be visible in dropped_dirty_count() after flush().
  ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
  ObjectStoreBackend deep(store);
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  TieredColdStore::Config cfg;
  cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore tiered({&fast, &deep}, cfg);

  const auto node = PricingCatalog::aws().cache_node_capacity;
  ASSERT_TRUE(tiered.put("dirty", Blob{7}, node / 2, 0.0).accepted);
  EXPECT_EQ(tiered.dirty_count(), 1U);

  // An object living only in the deep tier, big enough that promoting it
  // evicts the dirty resident.
  store.put("cold-obj", Blob{5}, (3 * node) / 4);
  ASSERT_TRUE(tiered.get("cold-obj", 1.0).found);
  EXPECT_TRUE(fast.contains("cold-obj"));   // promoted
  EXPECT_FALSE(fast.contains("dirty"));     // evicted before any flush
  EXPECT_EQ(fast.evictions(), 1U);

  const auto flushed = tiered.flush(2.0);
  EXPECT_EQ(flushed.drained, 0U);
  EXPECT_EQ(tiered.dropped_dirty_count(), 1U);
  EXPECT_EQ(tiered.dirty_count(), 0U);
}

}  // namespace
}  // namespace flstore::backend
