// ReplicatedColdStore: quorum acceptance, nearest-read with failover,
// outage windows from the fault schedule, egress-fee accounting, and the
// write-back dirty/flush interaction per region.
#include "backend/replicated_cold_store.hpp"

#include <gtest/gtest.h>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "backend/tiered_cold_store.hpp"
#include "sim/calibration.hpp"

namespace flstore::backend {
namespace {

const PricingCatalog& pricing = PricingCatalog::aws();

/// Three SSD regions at WAN distances 0, 1, 2 (no per-request fees, so
/// every dollar the composition reports is egress).
class ReplicatedSsdFixture : public ::testing::Test {
 protected:
  static std::unique_ptr<StorageBackend> make_ssd() {
    LocalSsdBackend::Config cfg;
    cfg.link = sim::local_ssd_link();
    return std::make_unique<LocalSsdBackend>(cfg, pricing);
  }

  static std::vector<ReplicatedColdStore::Region> make_regions(int count) {
    std::vector<ReplicatedColdStore::Region> regions;
    for (int i = 0; i < count; ++i) {
      ReplicatedColdStore::Region region;
      region.name = "region-" + std::to_string(i);
      region.owned = make_ssd();
      region.wan = sim::interregion_link(i);
      regions.push_back(std::move(region));
    }
    return regions;
  }

  static ReplicatedColdStore make(int count,
                                  ReplicatedColdStore::Config cfg = {}) {
    return ReplicatedColdStore(make_regions(count), cfg, pricing);
  }
};

TEST_F(ReplicatedSsdFixture, QuorumWriteWaitsForTheWthAck) {
  auto repl = make(3);  // majority: W = 2
  EXPECT_EQ(repl.write_quorum(), 2);
  const auto put = repl.put("k", Blob{1, 2}, 10 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  // Every region stores a copy.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(repl.region_backend(i).contains("k")) << i;
  }
  // Acks ordered by WAN distance; the caller waits for the 2nd (region 1).
  const double expected =
      sim::local_ssd_link().transfer_time(10 * units::MB) +
      sim::interregion_link(1).transfer_time(10 * units::MB);
  EXPECT_NEAR(put.latency_s, expected, 1e-9);
  // Two cross-region replicas paid egress; the home copy is free.
  EXPECT_NEAR(put.request_fee_usd,
              2 * pricing.interregion_transfer_cost(10 * units::MB), 1e-12);
  EXPECT_NEAR(repl.egress_fees_usd(), put.request_fee_usd, 1e-12);
}

TEST_F(ReplicatedSsdFixture, QuorumFailureIsARejectedPut) {
  ReplicatedColdStore::Config cfg;
  cfg.write_quorum = 3;
  auto repl = make(3, cfg);
  repl.set_outages({OutageWindow{2, 0.0, 100.0}});
  const auto put = repl.put("k", Blob{1}, 1 * units::MB, 10.0);
  EXPECT_FALSE(put.accepted);  // only 2 of the required 3 acks
  EXPECT_EQ(repl.quorum_failures(), 1U);
  EXPECT_EQ(repl.stats().rejected_puts, 1U);
  // The reachable replicas still hold the bytes (and billed the shipping).
  EXPECT_TRUE(repl.region_backend(0).contains("k"));
  EXPECT_TRUE(repl.region_backend(1).contains("k"));
  EXPECT_FALSE(repl.region_backend(2).contains("k"));
  // Quorum met once the outage clears.
  const auto retry = repl.put("k", Blob{1}, 1 * units::MB, 200.0);
  EXPECT_TRUE(retry.accepted);
}

TEST_F(ReplicatedSsdFixture, NearestReadServesFromTheHomeRegion) {
  auto repl = make(3);
  repl.put("k", Blob{9}, 10 * units::MB, 0.0);
  const auto got = repl.get("k", 1.0);
  ASSERT_TRUE(got.found);
  // Home hit: no WAN hop, no egress.
  EXPECT_NEAR(got.latency_s,
              sim::local_ssd_link().transfer_time(10 * units::MB), 1e-9);
  EXPECT_DOUBLE_EQ(got.request_fee_usd, 0.0);
  EXPECT_EQ(repl.failover_reads(), 0U);
}

TEST_F(ReplicatedSsdFixture, OutageFailsTheReadOverAndBillsEgress) {
  ReplicatedColdStore::Config cfg;
  cfg.read_repair = false;
  auto repl = make(3, cfg);
  repl.put("k", Blob{9}, 10 * units::MB, 0.0);
  repl.set_outages({OutageWindow{0, 50.0, 150.0}});
  const auto got = repl.get("k", 100.0);
  ASSERT_TRUE(got.found);
  // Probe timeout on the dark home region, then the distance-1 replica:
  // its backend read plus the WAN transfer home.
  const double expected =
      cfg.outage_probe_s +
      sim::local_ssd_link().transfer_time(10 * units::MB) +
      sim::interregion_link(1).transfer_time(10 * units::MB);
  EXPECT_NEAR(got.latency_s, expected, 1e-9);
  EXPECT_NEAR(got.request_fee_usd,
              pricing.interregion_transfer_cost(10 * units::MB), 1e-12);
  EXPECT_EQ(repl.failover_reads(), 1U);
  EXPECT_EQ(repl.outage_skips(), 1U);
  // After the outage the home replica serves again at local latency.
  const auto after = repl.get("k", 200.0);
  EXPECT_NEAR(after.latency_s,
              sim::local_ssd_link().transfer_time(10 * units::MB), 1e-9);
}

TEST_F(ReplicatedSsdFixture, WritesDuringOutageGoStaleAndReadRepairHeals) {
  auto repl = make(3);  // read_repair on by default
  repl.set_outages({OutageWindow{0, 0.0, 100.0}});
  // Written while home is dark: the replica set carries it, home does not.
  ASSERT_TRUE(repl.put("k", Blob{4, 4}, 10 * units::MB, 10.0).accepted);
  EXPECT_FALSE(repl.region_backend(0).contains("k"));
  EXPECT_TRUE(repl.region_backend(1).contains("k"));

  // Home is back but misses: the read pays the miss probe, fails over to
  // region 1, and repairs the home copy at read-completion time.
  const auto got = repl.get("k", 200.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(repl.failover_reads(), 1U);
  EXPECT_EQ(repl.repairs(), 1U);
  EXPECT_TRUE(repl.region_backend(0).contains("k"));
  // Repair shipped the bytes across the WAN once more: read egress plus
  // repair egress.
  EXPECT_NEAR(got.request_fee_usd,
              2 * pricing.interregion_transfer_cost(10 * units::MB), 1e-12);
  // The next read is local again — replication healed, no re-fetch.
  const auto healed = repl.get("k", 300.0);
  EXPECT_NEAR(healed.latency_s,
              sim::local_ssd_link().transfer_time(10 * units::MB), 1e-9);
  EXPECT_EQ(repl.failover_reads(), 1U);
}

TEST_F(ReplicatedSsdFixture, ReplicaThatMissedAnOverwriteIsStaleNotServed) {
  // Regression: a region that held v1 and missed the v2 overwrite during
  // its outage must not serve v1 on nearest-read after it comes back — the
  // version map skips it and read-repair overwrites the stale copy.
  auto repl = make(3);
  ASSERT_TRUE(repl.put("k", Blob{1}, 10 * units::MB, 0.0).accepted);
  repl.set_outages({OutageWindow{0, 5.0, 100.0}});
  ASSERT_TRUE(repl.put("k", Blob{2}, 10 * units::MB, 10.0).accepted);
  // Region 0 still physically holds v1...
  ASSERT_TRUE(repl.region_backend(0).contains("k"));
  const auto raw = repl.region_backend(0).get("k", 150.0);
  ASSERT_TRUE(raw.found);
  EXPECT_EQ(*raw.blob, Blob{1});

  // ...but the composition never serves it: the home probe is a stale
  // skip, region 1 serves v2, and repair overwrites the home copy.
  const auto got = repl.get("k", 200.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(*got.blob, Blob{2});
  EXPECT_EQ(repl.stale_skips(), 1U);
  EXPECT_EQ(repl.failover_reads(), 1U);
  EXPECT_EQ(repl.repairs(), 1U);

  // Healed: home serves v2 locally from now on.
  const auto healed = repl.get("k", 300.0);
  ASSERT_TRUE(healed.found);
  EXPECT_EQ(*healed.blob, Blob{2});
  EXPECT_EQ(repl.stale_skips(), 1U);
  EXPECT_EQ(repl.failover_reads(), 1U);
  const auto home = repl.region_backend(0).get("k", 400.0);
  ASSERT_TRUE(home.found);
  EXPECT_EQ(*home.blob, Blob{2});
}

TEST_F(ReplicatedSsdFixture, AllCurrentReplicasDarkFallsBackToStaleCopy) {
  // Bounded staleness beats unavailability: when every region holding the
  // latest version is inside an outage window, the read serves the
  // freshest reachable stale copy (and does not repair from it).
  auto repl = make(3);
  ASSERT_TRUE(repl.put("k", Blob{1}, 1 * units::MB, 0.0).accepted);
  repl.set_outages({OutageWindow{0, 5.0, 100.0}});
  ASSERT_TRUE(repl.put("k", Blob{2}, 1 * units::MB, 10.0).accepted);
  // Now regions 1 and 2 hold v2, region 0 holds v1 — and both v2 holders
  // go dark while region 0 is back.
  repl.set_outages(
      {OutageWindow{1, 150.0, 400.0}, OutageWindow{2, 150.0, 400.0}});
  const auto got = repl.get("k", 200.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(*got.blob, Blob{1});  // the stale home copy, flagged stale
  EXPECT_EQ(repl.repairs(), 0U);
  // Once a v2 holder returns, the read is current again.
  const auto current = repl.get("k", 500.0);
  ASSERT_TRUE(current.found);
  EXPECT_EQ(*current.blob, Blob{2});
}

TEST_F(ReplicatedSsdFixture, WriteNoRegionTookDoesNotPoisonTheVersionMap) {
  // Regression: a write that reaches zero regions (all dark) must not
  // advance the object's version — otherwise every replica of the old,
  // perfectly consistent copy would read as stale forever.
  auto repl = make(3);
  ASSERT_TRUE(repl.put("k", Blob{1}, 1 * units::MB, 0.0).accepted);
  repl.set_outages({OutageWindow{0, 5.0, 100.0}, OutageWindow{1, 5.0, 100.0},
                    OutageWindow{2, 5.0, 100.0}});
  const auto lost = repl.put("k", Blob{2}, 1 * units::MB, 10.0);
  EXPECT_FALSE(lost.accepted);
  EXPECT_EQ(repl.quorum_failures(), 1U);
  repl.set_outages({});
  // v1 is still the latest version any replica holds: served locally as
  // current, no stale skips, no failover.
  const auto got = repl.get("k", 200.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(*got.blob, Blob{1});
  EXPECT_EQ(repl.stale_skips(), 0U);
  EXPECT_EQ(repl.failover_reads(), 0U);
}

TEST(ReplicatedBoundedRegion, EvictedCurrentReplicaIsRepairedOnFailover) {
  // Regression: a bounded region can LRU-evict an object its version map
  // still calls current. The failover read must repair that copy too —
  // "current but evicted" is exactly as unserveable as stale.
  CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  std::vector<ReplicatedColdStore::Region> regions(2);
  regions[0].name = "home-cache";
  regions[0].owned =
      std::make_unique<CloudCacheBackend>(cache_cfg, PricingCatalog::aws());
  regions[1].name = "remote-ssd";
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  regions[1].owned =
      std::make_unique<LocalSsdBackend>(ssd_cfg, PricingCatalog::aws());
  regions[1].wan = sim::interregion_link(1);
  ReplicatedColdStore::Config cfg;
  cfg.write_quorum = 1;
  ReplicatedColdStore repl(std::move(regions), cfg, PricingCatalog::aws());

  const auto half = PricingCatalog::aws().cache_node_capacity / 2;
  ASSERT_TRUE(repl.put("a", Blob{1}, half, 0.0).accepted);
  ASSERT_TRUE(repl.put("b", Blob{2}, half, 1.0).accepted);
  ASSERT_TRUE(repl.put("c", Blob{3}, half, 2.0).accepted);  // evicts "a"
  ASSERT_FALSE(repl.region_backend(0).contains("a"));

  const auto got = repl.get("a", 10.0);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(*got.blob, Blob{1});
  EXPECT_EQ(repl.failover_reads(), 1U);
  EXPECT_GE(repl.repairs(), 1U);
  EXPECT_TRUE(repl.region_backend(0).contains("a"));  // restored
  // And the restored copy serves locally next time.
  const auto again = repl.get("a", 20.0);
  ASSERT_TRUE(again.found);
  EXPECT_EQ(repl.failover_reads(), 1U);
}

TEST_F(ReplicatedSsdFixture, BatchQuorumAndPerItemAcceptance) {
  auto repl = make(3);
  std::vector<PutRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(PutRequest{std::to_string(i), Blob{1}, 1 * units::MB});
  }
  const auto res = repl.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 4U);
  ASSERT_EQ(res.accepted.size(), 4U);
  // One batched stream per region; the caller waits for the W-th region.
  const double expected =
      sim::local_ssd_link().transfer_time(4 * units::MB) +
      sim::interregion_link(1).transfer_time(4 * units::MB);
  EXPECT_NEAR(res.latency_s, expected, 1e-9);
  EXPECT_NEAR(res.request_fee_usd,
              2 * pricing.interregion_transfer_cost(4 * units::MB), 1e-12);
  const auto stats = repl.stats();
  EXPECT_EQ(stats.batches, 1U);
  EXPECT_EQ(stats.puts, 4U);
  EXPECT_EQ(stats.bytes_written, 4 * units::MB);
}

TEST_F(ReplicatedSsdFixture, FarRegionBillsTheFarEgressRate) {
  std::vector<ReplicatedColdStore::Region> regions = make_regions(1);
  ReplicatedColdStore::Region far;
  far.name = "far-archive";
  far.owned = make_ssd();
  far.wan = sim::interregion_link(3);
  far.far = true;
  regions.push_back(std::move(far));
  ReplicatedColdStore::Config cfg;
  cfg.write_quorum = 2;
  ReplicatedColdStore repl(std::move(regions), cfg, pricing);
  const auto put = repl.put("k", Blob{1}, 10 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  EXPECT_NEAR(put.request_fee_usd,
              pricing.interregion_transfer_cost(10 * units::MB, /*far=*/true),
              1e-12);
  EXPECT_GT(pricing.far_region_usd_per_gb, pricing.interregion_usd_per_gb);
}

TEST_F(ReplicatedSsdFixture, AggregateAccessorsAndIdentity) {
  auto repl = make(3);
  repl.put("k", Blob{1}, 5 * units::MB, 0.0);
  EXPECT_EQ(repl.kind(), BackendKind::kReplicated);
  EXPECT_EQ(repl.name(), "replicated(2/3: region-0, region-1, region-2)");
  EXPECT_EQ(repl.region_count(), 3U);
  EXPECT_TRUE(repl.contains("k"));
  // One logical copy, every replica provisioned and billed.
  EXPECT_EQ(repl.stored_logical_bytes(), 5 * units::MB);
  EXPECT_DOUBLE_EQ(repl.idle_cost(3600.0),
                   3 * pricing.ssd_devices_cost(1, 3600.0));
  // Full replication: the smallest bounded region is the bound.
  EXPECT_EQ(repl.capacity_bytes(), 0U);  // all regions auto-scale
  EXPECT_TRUE(repl.remove("k", 1.0));
  EXPECT_FALSE(repl.contains("k"));
  EXPECT_FALSE(repl.remove("k", 2.0));
}

TEST(ReplicatedOutageSchedule, FaultEventsMapOntoRegions) {
  std::vector<FaultEvent> faults = {
      FaultEvent{10.0, 0}, FaultEvent{20.0, 1}, FaultEvent{30.0, 5}};
  const auto windows = region_outages_from_faults(faults, 2, 60.0);
  ASSERT_EQ(windows.size(), 3U);
  EXPECT_EQ(windows[0].region, 0U);
  EXPECT_EQ(windows[1].region, 1U);
  EXPECT_EQ(windows[2].region, 1U);  // rank 5 % 2 regions
  EXPECT_DOUBLE_EQ(windows[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].end_s, 70.0);
}

TEST(ReplicatedTieredRegions, WriteBackRegionsDrainOnFlushPerRegion) {
  // Each region is itself a write-back TieredColdStore (SSD over object
  // store): a replicated put lands dirty in both regions' fast tiers, and
  // the composition's flush drains every region to durability.
  ObjectStore store_a(sim::objstore_link(), pricing);
  ObjectStore store_b(sim::objstore_link(), pricing);
  ObjectStoreBackend deep_a(store_a);
  ObjectStoreBackend deep_b(store_b);
  LocalSsdBackend::Config ssd_cfg;
  ssd_cfg.link = sim::local_ssd_link();
  LocalSsdBackend fast_a(ssd_cfg, pricing);
  LocalSsdBackend fast_b(ssd_cfg, pricing);
  TieredColdStore::Config tiered_cfg;
  tiered_cfg.write_mode = TieredColdStore::WriteMode::kWriteBack;
  TieredColdStore region_a({&fast_a, &deep_a}, tiered_cfg);
  TieredColdStore region_b({&fast_b, &deep_b}, tiered_cfg);

  std::vector<ReplicatedColdStore::Region> regions(2);
  regions[0].name = "home";
  regions[0].backend = &region_a;
  regions[1].name = "remote";
  regions[1].backend = &region_b;
  regions[1].wan = sim::interregion_link(1);
  ReplicatedColdStore::Config cfg;
  cfg.write_quorum = 2;
  ReplicatedColdStore repl(std::move(regions), cfg, pricing);

  ASSERT_TRUE(repl.put("k", Blob{8, 8}, 2 * units::MB, 0.0).accepted);
  EXPECT_EQ(region_a.dirty_count(), 1U);
  EXPECT_EQ(region_b.dirty_count(), 1U);
  EXPECT_FALSE(deep_a.contains("k"));
  // Un-flushed bytes are still resident occupancy in every replica.
  EXPECT_EQ(repl.stored_logical_bytes(), 2 * units::MB);

  const auto flushed = repl.flush(1.0);
  EXPECT_EQ(flushed.drained, 1U);  // one logical object made durable
  EXPECT_GT(flushed.request_fee_usd, 0.0);  // both regions paid their PUTs
  EXPECT_EQ(region_a.dirty_count(), 0U);
  EXPECT_EQ(region_b.dirty_count(), 0U);
  EXPECT_TRUE(deep_a.contains("k"));
  EXPECT_TRUE(deep_b.contains("k"));
}

TEST(ReplicatedObjectStoreRegions, RequestFeesSumAcrossReachableRegions) {
  std::vector<ReplicatedColdStore::Region> regions(2);
  regions[0].name = "home";
  regions[0].owned = std::make_unique<ObjectStoreBackend>(
      sim::objstore_link(), pricing);
  regions[1].name = "remote";
  regions[1].owned = std::make_unique<ObjectStoreBackend>(
      sim::objstore_link(), pricing);
  regions[1].wan = sim::interregion_link(1);
  ReplicatedColdStore::Config cfg;
  cfg.write_quorum = 1;
  ReplicatedColdStore repl(std::move(regions), cfg, pricing);

  const auto put = repl.put("k", Blob{1}, 1 * units::MB, 0.0);
  EXPECT_TRUE(put.accepted);
  // Two S3 PUT fees plus one cross-region replica shipment.
  EXPECT_NEAR(put.request_fee_usd,
              2 * pricing.s3_usd_per_put +
                  pricing.interregion_transfer_cost(1 * units::MB),
              1e-12);
  // W=1: the caller waits only for the home ack.
  EXPECT_NEAR(put.latency_s,
              sim::objstore_link().transfer_time(1 * units::MB), 1e-9);
}

}  // namespace
}  // namespace flstore::backend
