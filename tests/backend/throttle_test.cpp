// Throttle token-bucket edge cases: the zero-rate (disabled) bucket, queue
// growth past the burst depth, fractional refill accumulation across long
// idle gaps, the never-backwards clock, and the batched-put accounting
// contract (one admission per batch; refused items still pay their share
// of the stream — PR 4's refused-bytes contract).
#include "backend/storage_backend.hpp"

#include <gtest/gtest.h>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "sim/calibration.hpp"

namespace flstore::backend {
namespace {

using units::MB;

TEST(ThrottleEdge, ZeroRateBucketNeverWaits) {
  Throttle throttle(Throttle::Config{/*ops_per_s=*/0.0, /*burst_ops=*/0.0});
  EXPECT_FALSE(throttle.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  }
}

TEST(ThrottleEdge, BeyondBurstTheQueueGrowsLinearly) {
  // Burst 3 at 2 ops/s: three back-to-back admits are free, then each
  // further same-instant op queues one token-interval deeper — sustained
  // overload degrades as a queue, never as an error.
  Throttle throttle(Throttle::Config{2.0, 3.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.5);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.5);
}

TEST(ThrottleEdge, FractionalRefillAccumulatesAndCapsAtBurst) {
  // 0.25 ops/s, depth 2: fractions of a token must accumulate across
  // gaps, and a long idle stretch refills to the burst depth, never past.
  Throttle throttle(Throttle::Config{0.25, 2.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  // t=2: 0.5 tokens accrued; the op owes the other half a token = 2 s.
  EXPECT_DOUBLE_EQ(throttle.admit(2.0), 2.0);
  // Long idle gap: the bucket caps at 2 tokens (not 0.25 * 998).
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 4.0);
}

TEST(ThrottleEdge, ClockNeverRunsBackwardsInsideTheBucket) {
  // An out-of-order timestamp (parallel tenant timelines) must not refill
  // from a rewound clock; tokens only accrue on forward progress.
  Throttle throttle(Throttle::Config{1.0, 1.0});
  EXPECT_DOUBLE_EQ(throttle.admit(5.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(3.0), 1.0);  // no refill from the past
  EXPECT_DOUBLE_EQ(throttle.admit(5.0), 2.0);  // still at last_s_ = 5
  // Forward progress refills again (the accrual clears the 2-token debt
  // and caps at the burst depth of 1).
  EXPECT_DOUBLE_EQ(throttle.admit(9.0), 0.0);
}

TEST(ThrottleEdge, BatchedPutChargesOneAdmissionAndAllAttemptedBytes) {
  // A fixed single-device SSD behind a 1 op/s throttle: a batch is ONE
  // admission regardless of item count, and a refused item (it can never
  // fit the device) still pays its share of the stream — the transfer
  // covers every *attempted* byte.
  LocalSsdBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.devices = 1;
  cfg.link = sim::local_ssd_link();
  cfg.throttle = Throttle::Config{1.0, 1.0};
  LocalSsdBackend ssd(cfg, PricingCatalog::aws());
  const auto huge = 2 * PricingCatalog::aws().ssd_device_capacity;

  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"a", Blob{1}, 1 * MB});
  batch.push_back(PutRequest{"big", Blob{2}, huge});
  batch.push_back(PutRequest{"b", Blob{3}, 1 * MB});
  const auto res = ssd.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 2U);
  ASSERT_EQ(res.accepted.size(), 3U);
  EXPECT_FALSE(res.accepted[1]);
  // One token for the whole batch, and the stream covers 2 MB + the
  // refused device-busting object.
  EXPECT_EQ(ssd.stats().throttled_ops, 0U);
  EXPECT_DOUBLE_EQ(res.latency_s,
                   cfg.link.transfer_time(2 * MB + huge));

  // The next batch queues behind the single consumed token: exactly one
  // throttled admission, with the wait in the ledger — not one per item.
  std::vector<PutRequest> second;
  second.push_back(PutRequest{"c", Blob{4}, 1 * MB});
  second.push_back(PutRequest{"d", Blob{5}, 1 * MB});
  const auto res2 = ssd.put_batch(std::move(second), 0.0);
  EXPECT_EQ(res2.stored, 2U);
  EXPECT_EQ(ssd.stats().throttled_ops, 1U);
  EXPECT_DOUBLE_EQ(ssd.stats().throttle_wait_s, 1.0);
  EXPECT_DOUBLE_EQ(res2.latency_s,
                   1.0 + cfg.link.transfer_time(2 * MB));
}

TEST(ThrottleEdge, CloudCacheBatchHonoursTheSameContract) {
  CloudCacheBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.nodes = 1;
  cfg.link = sim::cloudcache_link();
  cfg.throttle = Throttle::Config{1.0, 1.0};
  CloudCacheBackend cache(cfg, PricingCatalog::aws());
  const auto huge = 2 * PricingCatalog::aws().cache_node_capacity;

  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"a", Blob{1}, 1 * MB});
  batch.push_back(PutRequest{"big", Blob{2}, huge});
  const auto res = cache.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 1U);
  EXPECT_EQ(cache.stats().throttled_ops, 0U);
  EXPECT_EQ(cache.stats().rejected_puts, 1U);
  EXPECT_DOUBLE_EQ(res.latency_s, cfg.link.transfer_time(1 * MB + huge));

  std::vector<PutRequest> second;
  second.push_back(PutRequest{"c", Blob{3}, 1 * MB});
  const auto res2 = cache.put_batch(std::move(second), 0.0);
  EXPECT_EQ(cache.stats().throttled_ops, 1U);
  EXPECT_DOUBLE_EQ(res2.latency_s, 1.0 + cfg.link.transfer_time(1 * MB));
}

// --- Live retune (control-plane actuation) --------------------------------

TEST(ThrottleRetune, AccruedTokensCarryOverClampedToNewBurst) {
  Throttle throttle(Throttle::Config{2.0, 8.0});
  // Full bucket of 8; retune to burst 2: credit clamps down.
  throttle.set_config(Throttle::Config{2.0, 2.0}, 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.5);  // third op queues
}

TEST(ThrottleRetune, QueuedBacklogDrainsAtTheNewRate) {
  // Rate 1, burst 1: one free admit, then two queue 1 s and 2 s deep —
  // the bucket owes 2 tokens.
  Throttle throttle(Throttle::Config{1.0, 1.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 2.0);
  // Doubling the rate at the same instant: the next op owes 3 tokens at
  // 2 ops/s = 1.5 s, not the 3 s the old rate would have charged. The
  // backlog is op-denominated; re-provisioning clears it sooner.
  throttle.set_config(Throttle::Config{2.0, 1.0}, 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.5);
}

TEST(ThrottleRetune, SettlesOldRateAccrualBeforeSwapping) {
  // Debt of 2 tokens at t=0 under 1 op/s. Retuning at t=1 must first
  // credit the 1 token the old rate accrued, then charge the remainder at
  // the new rate: (1 debt + 1 op) / 4 ops/s = 0.5 s.
  Throttle throttle(Throttle::Config{1.0, 1.0});
  (void)throttle.admit(0.0);
  (void)throttle.admit(0.0);
  (void)throttle.admit(0.0);  // tokens now -2
  throttle.set_config(Throttle::Config{4.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(throttle.admit(1.0), 0.5);
}

TEST(ThrottleRetune, TurningOffForgivesTheQueueAndBackOnStartsFresh) {
  Throttle throttle(Throttle::Config{1.0, 1.0});
  (void)throttle.admit(0.0);
  EXPECT_GT(throttle.admit(0.0), 0.0);  // in debt
  throttle.set_config(Throttle::Config{0.0, 0.0}, 0.0);
  EXPECT_FALSE(throttle.enabled());
  EXPECT_DOUBLE_EQ(throttle.admit(5.0), 0.0);
  // Re-enabling starts a fresh full bucket from `now`.
  throttle.set_config(Throttle::Config{1.0, 2.0}, 10.0);
  EXPECT_TRUE(throttle.enabled());
  EXPECT_DOUBLE_EQ(throttle.admit(10.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(10.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(10.0), 1.0);
}

TEST(ThrottleRetune, BackendSetThrottleForwardsThroughTheStack) {
  // The virtual set_throttle seam: a tiered stack forwards the retune to
  // every tier, and the retuned rate shows up as shorter queueing on the
  // next admission.
  LocalSsdBackend::Config cfg;
  cfg.link = sim::local_ssd_link();
  cfg.throttle = Throttle::Config{1.0, 1.0};
  LocalSsdBackend ssd(cfg, PricingCatalog::aws());
  StorageBackend& backend = ssd;
  ASSERT_TRUE(backend.put("a", Blob{1}, 1 * MB, 0.0).accepted);
  ASSERT_TRUE(backend.put("b", Blob{2}, 1 * MB, 0.0).accepted);
  EXPECT_DOUBLE_EQ(ssd.stats().throttle_wait_s, 1.0);
  EXPECT_TRUE(backend.set_throttle(Throttle::Config{10.0, 1.0}, 0.0));
  // Debt of 1 token + this op's token = 2 tokens at 10 ops/s = 0.2 s.
  ASSERT_TRUE(backend.put("c", Blob{3}, 1 * MB, 0.0).accepted);
  EXPECT_DOUBLE_EQ(ssd.stats().throttle_wait_s, 1.2);
}

}  // namespace
}  // namespace flstore::backend
