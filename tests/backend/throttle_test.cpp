// Throttle token-bucket edge cases: the zero-rate (disabled) bucket, queue
// growth past the burst depth, fractional refill accumulation across long
// idle gaps, the never-backwards clock, and the batched-put accounting
// contract (one admission per batch; refused items still pay their share
// of the stream — PR 4's refused-bytes contract).
#include "backend/storage_backend.hpp"

#include <gtest/gtest.h>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "sim/calibration.hpp"

namespace flstore::backend {
namespace {

using units::MB;

TEST(ThrottleEdge, ZeroRateBucketNeverWaits) {
  Throttle throttle(Throttle::Config{/*ops_per_s=*/0.0, /*burst_ops=*/0.0});
  EXPECT_FALSE(throttle.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  }
}

TEST(ThrottleEdge, BeyondBurstTheQueueGrowsLinearly) {
  // Burst 3 at 2 ops/s: three back-to-back admits are free, then each
  // further same-instant op queues one token-interval deeper — sustained
  // overload degrades as a queue, never as an error.
  Throttle throttle(Throttle::Config{2.0, 3.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.5);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 1.5);
}

TEST(ThrottleEdge, FractionalRefillAccumulatesAndCapsAtBurst) {
  // 0.25 ops/s, depth 2: fractions of a token must accumulate across
  // gaps, and a long idle stretch refills to the burst depth, never past.
  Throttle throttle(Throttle::Config{0.25, 2.0});
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(0.0), 0.0);
  // t=2: 0.5 tokens accrued; the op owes the other half a token = 2 s.
  EXPECT_DOUBLE_EQ(throttle.admit(2.0), 2.0);
  // Long idle gap: the bucket caps at 2 tokens (not 0.25 * 998).
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(1000.0), 4.0);
}

TEST(ThrottleEdge, ClockNeverRunsBackwardsInsideTheBucket) {
  // An out-of-order timestamp (parallel tenant timelines) must not refill
  // from a rewound clock; tokens only accrue on forward progress.
  Throttle throttle(Throttle::Config{1.0, 1.0});
  EXPECT_DOUBLE_EQ(throttle.admit(5.0), 0.0);
  EXPECT_DOUBLE_EQ(throttle.admit(3.0), 1.0);  // no refill from the past
  EXPECT_DOUBLE_EQ(throttle.admit(5.0), 2.0);  // still at last_s_ = 5
  // Forward progress refills again (the accrual clears the 2-token debt
  // and caps at the burst depth of 1).
  EXPECT_DOUBLE_EQ(throttle.admit(9.0), 0.0);
}

TEST(ThrottleEdge, BatchedPutChargesOneAdmissionAndAllAttemptedBytes) {
  // A fixed single-device SSD behind a 1 op/s throttle: a batch is ONE
  // admission regardless of item count, and a refused item (it can never
  // fit the device) still pays its share of the stream — the transfer
  // covers every *attempted* byte.
  LocalSsdBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.devices = 1;
  cfg.link = sim::local_ssd_link();
  cfg.throttle = Throttle::Config{1.0, 1.0};
  LocalSsdBackend ssd(cfg, PricingCatalog::aws());
  const auto huge = 2 * PricingCatalog::aws().ssd_device_capacity;

  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"a", Blob{1}, 1 * MB});
  batch.push_back(PutRequest{"big", Blob{2}, huge});
  batch.push_back(PutRequest{"b", Blob{3}, 1 * MB});
  const auto res = ssd.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 2U);
  ASSERT_EQ(res.accepted.size(), 3U);
  EXPECT_FALSE(res.accepted[1]);
  // One token for the whole batch, and the stream covers 2 MB + the
  // refused device-busting object.
  EXPECT_EQ(ssd.stats().throttled_ops, 0U);
  EXPECT_DOUBLE_EQ(res.latency_s,
                   cfg.link.transfer_time(2 * MB + huge));

  // The next batch queues behind the single consumed token: exactly one
  // throttled admission, with the wait in the ledger — not one per item.
  std::vector<PutRequest> second;
  second.push_back(PutRequest{"c", Blob{4}, 1 * MB});
  second.push_back(PutRequest{"d", Blob{5}, 1 * MB});
  const auto res2 = ssd.put_batch(std::move(second), 0.0);
  EXPECT_EQ(res2.stored, 2U);
  EXPECT_EQ(ssd.stats().throttled_ops, 1U);
  EXPECT_DOUBLE_EQ(ssd.stats().throttle_wait_s, 1.0);
  EXPECT_DOUBLE_EQ(res2.latency_s,
                   1.0 + cfg.link.transfer_time(2 * MB));
}

TEST(ThrottleEdge, CloudCacheBatchHonoursTheSameContract) {
  CloudCacheBackend::Config cfg;
  cfg.auto_scale = false;
  cfg.nodes = 1;
  cfg.link = sim::cloudcache_link();
  cfg.throttle = Throttle::Config{1.0, 1.0};
  CloudCacheBackend cache(cfg, PricingCatalog::aws());
  const auto huge = 2 * PricingCatalog::aws().cache_node_capacity;

  std::vector<PutRequest> batch;
  batch.push_back(PutRequest{"a", Blob{1}, 1 * MB});
  batch.push_back(PutRequest{"big", Blob{2}, huge});
  const auto res = cache.put_batch(std::move(batch), 0.0);
  EXPECT_EQ(res.stored, 1U);
  EXPECT_EQ(cache.stats().throttled_ops, 0U);
  EXPECT_EQ(cache.stats().rejected_puts, 1U);
  EXPECT_DOUBLE_EQ(res.latency_s, cfg.link.transfer_time(1 * MB + huge));

  std::vector<PutRequest> second;
  second.push_back(PutRequest{"c", Blob{3}, 1 * MB});
  const auto res2 = cache.put_batch(std::move(second), 0.0);
  EXPECT_EQ(cache.stats().throttled_ops, 1U);
  EXPECT_DOUBLE_EQ(res2.latency_s, 1.0 + cfg.link.transfer_time(1 * MB));
}

}  // namespace
}  // namespace flstore::backend
