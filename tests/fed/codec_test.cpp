#include "fed/codec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace flstore::fed {
namespace {

ClientUpdate sample_update() {
  Rng rng(1);
  ClientUpdate u;
  u.client = 17;
  u.round = 42;
  u.delta = ops::random_normal(128, rng);
  u.logical_bytes = 85 * units::MB;
  u.num_samples = 512;
  return u;
}

TEST(Codec, UpdateRoundTrip) {
  const auto u = sample_update();
  EXPECT_EQ(decode_update(encode_update(u)), u);
}

TEST(Codec, AggregateRoundTrip) {
  Rng rng(2);
  const auto model = ops::random_normal(64, rng);
  const auto blob = encode_aggregate(7, model, 100 * units::MB);
  const auto rec = decode_aggregate(blob);
  EXPECT_EQ(rec.round, 7);
  EXPECT_EQ(rec.model, model);
  EXPECT_EQ(rec.logical_bytes, 100 * units::MB);
}

TEST(Codec, MetricsRoundTrip) {
  ClientMetrics m;
  m.client = 3;
  m.round = 9;
  m.local_loss = 0.75;
  m.accuracy = 0.81;
  m.train_time_s = 120.0;
  m.upload_time_s = 30.0;
  m.compute_gflops = 42.0;
  m.network_mbps = 25.0;
  m.energy_j = 900.0;
  m.num_samples = 640;
  EXPECT_EQ(decode_metrics(encode_metrics(m)), m);
}

TEST(Codec, RoundInfoRoundTrip) {
  RoundInfo info;
  info.round = 123;
  info.hparams.learning_rate = 0.0125;
  info.hparams.batch_size = 64;
  info.hparams.momentum = 0.95;
  info.hparams.local_epochs = 3;
  info.global_loss = 0.33;
  info.num_participants = 10;
  const auto rec = decode_round_info(encode_round_info(info));
  EXPECT_EQ(rec.round, info.round);
  EXPECT_EQ(rec.hparams, info.hparams);
  EXPECT_DOUBLE_EQ(rec.global_loss, info.global_loss);
  EXPECT_EQ(rec.num_participants, 10);
}

TEST(Codec, TagMismatchDetected) {
  const auto blob = encode_metrics(ClientMetrics{});
  EXPECT_THROW((void)decode_update(blob), InvalidArgument);
  EXPECT_THROW((void)decode_aggregate(blob), InvalidArgument);
}

TEST(Codec, CorruptionDetected) {
  auto blob = encode_update(sample_update());
  blob[blob.size() / 2] ^= 0x55;
  EXPECT_THROW((void)decode_update(blob), InvalidArgument);
}

TEST(Codec, TruncationDetected) {
  auto blob = encode_update(sample_update());
  blob.resize(blob.size() / 2);
  EXPECT_THROW((void)decode_update(blob), InvalidArgument);
}

TEST(Codec, EmptyBlobRejected) {
  EXPECT_THROW((void)decode_update(Blob{}), InvalidArgument);
}

TEST(Codec, MetadataLogicalSizesAreTiny) {
  // The P4 size asymmetry the paper relies on: KB-scale metadata vs
  // multi-hundred-MB updates.
  EXPECT_LT(kMetricsLogicalBytes, 10 * units::KB);
  EXPECT_LT(kRoundInfoLogicalBytes, 10 * units::KB);
}

}  // namespace
}  // namespace flstore::fed
