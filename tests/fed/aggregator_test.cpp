#include "fed/aggregator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace flstore::fed {
namespace {

ClientUpdate make_update(ClientId c, RoundId r, std::vector<float> v,
                         std::int32_t samples) {
  ClientUpdate u;
  u.client = c;
  u.round = r;
  u.delta = Tensor(std::move(v));
  u.num_samples = samples;
  return u;
}

TEST(FedAvg, EqualWeightsIsMean) {
  const std::vector<ClientUpdate> ups{
      make_update(0, 1, {0, 0}, 100),
      make_update(1, 1, {2, 4}, 100),
  };
  const auto agg = fedavg(ups);
  EXPECT_NEAR(agg[0], 1.0, 1e-6);
  EXPECT_NEAR(agg[1], 2.0, 1e-6);
}

TEST(FedAvg, WeightsBySampleCount) {
  const std::vector<ClientUpdate> ups{
      make_update(0, 1, {0, 0}, 300),
      make_update(1, 1, {4, 4}, 100),
  };
  const auto agg = fedavg(ups);
  EXPECT_NEAR(agg[0], 1.0, 1e-6);
}

TEST(FedAvg, MixedRoundsRejected) {
  const std::vector<ClientUpdate> ups{
      make_update(0, 1, {0, 0}, 100),
      make_update(1, 2, {2, 4}, 100),
  };
  EXPECT_THROW((void)fedavg(ups), InternalError);
}

TEST(FedAvg, EmptyRejected) { EXPECT_THROW((void)fedavg({}), InternalError); }

TEST(FedAvg, ExcludingClientsChangesResult) {
  const std::vector<ClientUpdate> ups{
      make_update(0, 1, {0, 0}, 100),
      make_update(1, 1, {4, 4}, 100),
      make_update(2, 1, {8, 8}, 100),
  };
  const auto all = fedavg(ups);
  const auto without2 = fedavg_excluding(ups, {2});
  EXPECT_NEAR(all[0], 4.0, 1e-6);
  EXPECT_NEAR(without2[0], 2.0, 1e-6);
}

TEST(FedAvg, ExcludingEveryoneRejected) {
  const std::vector<ClientUpdate> ups{make_update(0, 1, {1, 1}, 100)};
  EXPECT_THROW((void)fedavg_excluding(ups, {0}), InternalError);
}

TEST(FedAvg, ZeroSampleClientsGetMinimumWeight) {
  const std::vector<ClientUpdate> ups{
      make_update(0, 1, {0, 0}, 0),
      make_update(1, 1, {2, 2}, 0),
  };
  const auto agg = fedavg(ups);  // both clamped to weight 1
  EXPECT_NEAR(agg[0], 1.0, 1e-6);
}

}  // namespace
}  // namespace flstore::fed
