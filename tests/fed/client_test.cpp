#include "fed/client.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace flstore::fed {
namespace {

Tensor direction(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  auto d = ops::random_normal(dim, rng);
  ops::scale(d, 1.0 / ops::l2_norm(d));
  return d;
}

TEST(SimClient, ProfileDeterministicPerSeed) {
  const SimClient a(5, 64, ClientBehavior::kHonest, 42);
  const SimClient b(5, 64, ClientBehavior::kHonest, 42);
  EXPECT_EQ(a.profile().signature, b.profile().signature);
  EXPECT_DOUBLE_EQ(a.profile().compute_gflops, b.profile().compute_gflops);
}

TEST(SimClient, DifferentIdsDifferentSignatures) {
  const SimClient a(1, 64, ClientBehavior::kHonest, 42);
  const SimClient b(2, 64, ClientBehavior::kHonest, 42);
  EXPECT_LT(ops::cosine_similarity(a.profile().signature,
                                   b.profile().signature),
            0.5);
}

TEST(SimClient, SignatureIsUnitNorm) {
  const SimClient c(3, 128, ClientBehavior::kHonest, 7);
  EXPECT_NEAR(ops::l2_norm(c.profile().signature), 1.0, 1e-5);
}

TEST(SimClient, HonestUpdateAlignsWithGlobalDirection) {
  const SimClient c(10, 128, ClientBehavior::kHonest, 7);
  const auto dir = direction(128, 3);
  Rng rng(11);
  const auto out = c.train_round(5, dir, 0.5, 100 * units::MB, 4.0, rng);
  EXPECT_GT(ops::cosine_similarity(out.update.delta, dir), 0.3);
  EXPECT_EQ(out.update.client, 10);
  EXPECT_EQ(out.update.round, 5);
  EXPECT_EQ(out.update.logical_bytes, 100 * units::MB);
}

TEST(SimClient, MaliciousUpdateOpposesGlobalDirection) {
  const SimClient c(10, 128, ClientBehavior::kMalicious, 7);
  const auto dir = direction(128, 3);
  Rng rng(11);
  const auto out = c.train_round(5, dir, 0.5, 100 * units::MB, 4.0, rng);
  EXPECT_LT(ops::cosine_similarity(out.update.delta, dir), -0.3);
}

TEST(SimClient, StragglerIsSlower) {
  const SimClient honest(20, 64, ClientBehavior::kHonest, 7);
  const SimClient strag(20, 64, ClientBehavior::kStraggler, 7);
  const auto dir = direction(64, 3);
  Rng r1(1), r2(1);
  const auto ho = honest.train_round(0, dir, 0.1, 50 * units::MB, 4.0, r1);
  const auto so = strag.train_round(0, dir, 0.1, 50 * units::MB, 4.0, r2);
  EXPECT_GT(so.metrics.train_time_s, ho.metrics.train_time_s * 2.0);
  EXPECT_GT(so.metrics.upload_time_s, ho.metrics.upload_time_s);
}

TEST(SimClient, LossDecaysWithProgress) {
  const SimClient c(1, 64, ClientBehavior::kHonest, 7);
  const auto dir = direction(64, 3);
  Rng r1(1), r2(1);
  const auto early = c.train_round(0, dir, 0.05, units::MB, 1.0, r1);
  const auto late = c.train_round(900, dir, 0.9, units::MB, 1.0, r2);
  EXPECT_GT(early.metrics.local_loss, late.metrics.local_loss);
  EXPECT_LT(early.metrics.accuracy, late.metrics.accuracy);
}

TEST(SimClient, MetricsEchoProfile) {
  const SimClient c(8, 64, ClientBehavior::kHonest, 7);
  const auto dir = direction(64, 3);
  Rng rng(2);
  const auto out = c.train_round(1, dir, 0.2, units::MB, 1.0, rng);
  EXPECT_DOUBLE_EQ(out.metrics.compute_gflops, c.profile().compute_gflops);
  EXPECT_DOUBLE_EQ(out.metrics.network_mbps, c.profile().network_mbps);
  EXPECT_EQ(out.metrics.num_samples, c.profile().num_samples);
  EXPECT_EQ(out.metrics.client, 8);
  EXPECT_EQ(out.metrics.round, 1);
}

}  // namespace
}  // namespace flstore::fed
