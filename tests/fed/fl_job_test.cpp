#include "fed/fl_job.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "fed/aggregator.hpp"
#include "tensor/ops.hpp"

namespace flstore::fed {
namespace {

FLJobConfig small_config() {
  FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 40;
  cfg.clients_per_round = 8;
  cfg.rounds = 30;
  cfg.malicious_fraction = 0.1;
  cfg.seed = 77;
  return cfg;
}

TEST(FLJob, ParticipantsDeterministicAndValid) {
  const FLJob job(small_config());
  const auto p1 = job.participants(5);
  const auto p2 = job.participants(5);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.size(), 8U);
  std::set<ClientId> uniq(p1.begin(), p1.end());
  EXPECT_EQ(uniq.size(), 8U);
  for (const auto c : p1) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 40);
  }
}

TEST(FLJob, ParticipantsVaryAcrossRounds) {
  const FLJob job(small_config());
  int identical = 0;
  for (RoundId r = 0; r + 1 < 20; ++r) {
    if (job.participants(r) == job.participants(r + 1)) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(FLJob, OutOfRangeRoundsEmpty) {
  const FLJob job(small_config());
  EXPECT_TRUE(job.participants(-1).empty());
  EXPECT_TRUE(job.participants(30).empty());
  EXPECT_EQ(job.latest_round(), 29);
}

TEST(FLJob, MakeRoundConsistent) {
  const FLJob job(small_config());
  const auto rec = job.make_round(3);
  EXPECT_EQ(rec.round, 3);
  EXPECT_EQ(rec.updates.size(), 8U);
  EXPECT_EQ(rec.metrics.size(), 8U);
  EXPECT_EQ(rec.participants(), job.participants(3));
  EXPECT_EQ(rec.model_bytes, job.model().object_bytes);
  for (const auto& u : rec.updates) {
    EXPECT_EQ(u.round, 3);
    EXPECT_EQ(u.delta.dim(), job.model().materialized_dim());
    EXPECT_EQ(u.logical_bytes, job.model().object_bytes);
  }
  // Aggregate equals FedAvg of the updates.
  const auto agg = fedavg(rec.updates);
  EXPECT_LT(ops::l2_distance(agg, rec.aggregate), 1e-6);
}

TEST(FLJob, MakeRoundDeterministic) {
  const FLJob job(small_config());
  const auto a = job.make_round(7);
  const auto b = job.make_round(7);
  EXPECT_EQ(a.updates, b.updates);
}

TEST(FLJob, MaliciousClientsPlantedAtExpectedRate) {
  const FLJob job(small_config());
  const auto mal = job.malicious_clients();
  EXPECT_EQ(mal.size(), 4U);  // ceil(0.1 * 40)
  for (const auto c : mal) EXPECT_TRUE(job.client(c).malicious());
}

TEST(FLJob, GlobalDirectionCorrelatesAcrossNearbyRounds) {
  const FLJob job(small_config());
  const auto d0 = job.global_direction(10);
  const auto d1 = job.global_direction(11);
  EXPECT_GT(ops::cosine_similarity(d0, d1), 0.8);
}

TEST(FLJob, HyperparametersStepDecay) {
  FLJobConfig cfg = small_config();
  cfg.rounds = 1000;
  const FLJob job(cfg);
  EXPECT_DOUBLE_EQ(job.hyperparameters(0).learning_rate, 0.05);
  EXPECT_DOUBLE_EQ(job.hyperparameters(250).learning_rate, 0.025);
  EXPECT_DOUBLE_EQ(job.hyperparameters(999).learning_rate, 0.05 * 0.125);
}

TEST(FLJob, DirectoryParticipationHelpers) {
  const FLJob job(small_config());
  const auto parts = job.participants(4);
  const auto c = parts.front();
  EXPECT_TRUE(job.participated(c, 4));

  const auto window = job.participation_window(c, 29, 3);
  EXPECT_LE(window.size(), 3U);
  for (const auto r : window) EXPECT_TRUE(job.participated(c, r));
  // Window is ascending.
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_LT(window[i - 1], window[i]);
  }

  const auto next = job.next_participation(c, 4);
  if (next.has_value()) {
    EXPECT_GT(*next, 4);
    EXPECT_TRUE(job.participated(c, *next));
    for (RoundId r = 5; r < *next; ++r) EXPECT_FALSE(job.participated(c, r));
  }
}

TEST(FLJob, InvalidConfigRejected) {
  FLJobConfig cfg = small_config();
  cfg.clients_per_round = 100;  // > pool
  EXPECT_THROW(FLJob{cfg}, InternalError);
  cfg = small_config();
  cfg.model = "unknown_model";
  EXPECT_THROW(FLJob{cfg}, InvalidArgument);
  cfg = small_config();
  cfg.rounds = 0;
  EXPECT_THROW(FLJob{cfg}, InternalError);
}

TEST(FLJob, MaliciousUpdatesAreCosineOutliers) {
  // The planted structure must be recoverable: a robust score (median
  // cosine to the other updates — what the malicious-filter workload uses)
  // separates poisoners from honest clients even when several poisoners
  // land in the same round and skew the FedAvg mean.
  FLJobConfig cfg = small_config();
  cfg.malicious_fraction = 0.1;
  const FLJob job(cfg);
  for (RoundId r : {2, 10, 25}) {
    const auto rec = job.make_round(r);
    const auto n = rec.updates.size();
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> cosines;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        cosines.push_back(
            ops::cosine_similarity(rec.updates[i].delta, rec.updates[j].delta));
      }
      std::sort(cosines.begin(), cosines.end());
      const double median = cosines[cosines.size() / 2];
      const auto client = rec.updates[i].client;
      if (job.client(client).malicious()) {
        EXPECT_LT(median, 0.0) << "round " << r << " client " << client;
      } else {
        EXPECT_GT(median, 0.2) << "round " << r << " client " << client;
      }
    }
  }
}

}  // namespace
}  // namespace flstore::fed
