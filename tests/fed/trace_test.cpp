#include "fed/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "fed/fl_job.hpp"

namespace flstore::fed {
namespace {

FLJob make_job() {
  FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 50;
  cfg.clients_per_round = 10;
  cfg.rounds = 200;
  cfg.seed = 5;
  return FLJob(cfg);
}

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.duration_s = 3600.0;
  cfg.total_requests = 200;
  cfg.round_interval_s = 18.0;  // 200 rounds fit the hour
  cfg.seed = 9;
  return cfg;
}

TEST(Trace, GeneratesRequestedCountSorted) {
  const auto job = make_job();
  const auto trace = generate_trace(small_trace(), job);
  EXPECT_GT(trace.size(), 150U);
  EXPECT_LE(trace.size(), 200U);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].arrival_s, trace[i].arrival_s);
  }
}

TEST(Trace, DeterministicGivenSeed) {
  const auto job = make_job();
  const auto a = generate_trace(small_trace(), job);
  const auto b = generate_trace(small_trace(), job);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
  }
}

TEST(Trace, RequestIdsUnique) {
  const auto job = make_job();
  const auto trace = generate_trace(small_trace(), job);
  std::set<RequestId> ids;
  for (const auto& r : trace) ids.insert(r.id);
  EXPECT_EQ(ids.size(), trace.size());
}

TEST(Trace, RoundsTrackTrainingProgress) {
  const auto job = make_job();
  const auto cfg = small_trace();
  const auto trace = generate_trace(cfg, job);
  for (const auto& req : trace) {
    const auto newest = std::min<RoundId>(
        job.latest_round(),
        static_cast<RoundId>(req.arrival_s / cfg.round_interval_s));
    EXPECT_GE(req.round, 0);
    EXPECT_LE(req.round, newest);
    if (policy_class_for(req.type) != PolicyClass::kP3) {
      // Non-P3 requests target the newest round modulo a small lag.
      EXPECT_GE(req.round, std::max<RoundId>(0, newest - 1));
    }
  }
}

TEST(Trace, P3RequestsCarryTrackedClientsAndAdvance) {
  const auto job = make_job();
  auto cfg = small_trace();
  cfg.workloads = {WorkloadType::kReputation};
  const auto trace = generate_trace(cfg, job);
  ASSERT_FALSE(trace.empty());
  std::map<ClientId, RoundId> last_round;
  for (const auto& req : trace) {
    EXPECT_NE(req.client, kNoClient);
    const auto it = last_round.find(req.client);
    if (it != last_round.end()) {
      EXPECT_GE(req.round, it->second);
    }
    last_round[req.client] = req.round;
  }
}

TEST(Trace, SamplerP3CursorHoldsAtLastParticipationWhenExhausted) {
  // Once a tracked client's participation sequence is exhausted, its cursor
  // holds at the last participation reached — a stable, warm target — and
  // must not wrap back to the start of the trajectory.
  const auto job = make_job();
  TraceSampler sampler({WorkloadType::kReputation}, job,
                       /*tracked_clients=*/3, /*round_interval_s=*/18.0);
  Rng rng(77);
  // Drive arrival times far past the end of training (200 rounds * 18 s),
  // so every tracked client's sequence runs dry.
  std::map<ClientId, RoundId> held;
  for (int i = 0; i < 600; ++i) {
    const double now = 10000.0 + i;  // newest round capped at latest_round
    const auto req = sampler.sample(static_cast<RequestId>(i), now, rng);
    const auto it = held.find(req.client);
    if (it != held.end()) {
      EXPECT_GE(req.round, it->second);  // never wraps backwards
    }
    held[req.client] = req.round;
  }
  // After exhaustion the cursor is pinned: further draws repeat the held
  // round exactly, and it is each client's true last participation.
  for (int i = 600; i < 650; ++i) {
    const auto req = sampler.sample(static_cast<RequestId>(i), 20000.0, rng);
    EXPECT_EQ(req.round, held[req.client]);
    EXPECT_TRUE(job.participated(req.client, req.round));
    EXPECT_FALSE(
        job.next_participation(req.client, req.round).has_value());
  }
}

TEST(Trace, SamplerStateBytesFlatAcrossDraws) {
  const auto job = make_job();
  TraceSampler sampler({}, job, 5, 18.0);
  Rng rng(79);
  const auto before = sampler.state_bytes();
  for (int i = 0; i < 2000; ++i) {
    (void)sampler.sample(static_cast<RequestId>(i), 1.0 + i, rng);
  }
  EXPECT_EQ(sampler.state_bytes(), before);
}

TEST(Trace, UsesAllWorkloadsInMix) {
  const auto job = make_job();
  auto cfg = small_trace();
  cfg.total_requests = 500;
  const auto trace = generate_trace(cfg, job);
  std::set<WorkloadType> seen;
  for (const auto& r : trace) seen.insert(r.type);
  EXPECT_EQ(seen.size(), paper_workloads().size());
}

TEST(Table2Traces, P2OnePerRound) {
  const auto trace = table2_p2_trace(WorkloadType::kMaliciousFilter, 100);
  EXPECT_EQ(trace.size(), 100U);
  for (RoundId r = 0; r < 100; ++r) {
    EXPECT_EQ(trace[static_cast<std::size_t>(r)].round, r);
    EXPECT_EQ(trace[static_cast<std::size_t>(r)].type,
              WorkloadType::kMaliciousFilter);
  }
}

TEST(Table2Traces, P2RejectsNonP2Workload) {
  EXPECT_THROW((void)table2_p2_trace(WorkloadType::kInference, 10),
               InternalError);
}

TEST(Table2Traces, P3FollowsParticipation) {
  const auto job = make_job();
  const auto client = job.participants(0).front();
  const auto trace = table2_p3_trace(client, 16, job);
  EXPECT_LE(trace.size(), 16U);
  EXPECT_GT(trace.size(), 4U);  // client participates ~40 times in 200 rounds
  RoundId prev = -1;
  for (const auto& req : trace) {
    EXPECT_EQ(req.client, client);
    EXPECT_GT(req.round, prev);
    EXPECT_TRUE(job.participated(client, req.round));
    prev = req.round;
  }
}

TEST(Table2Traces, P4OnePerRound) {
  const auto trace = table2_p4_trace(50);
  EXPECT_EQ(trace.size(), 50U);
  EXPECT_EQ(trace[10].type, WorkloadType::kSchedulingPerf);
}

TEST(Taxonomy, Table1Mapping) {
  EXPECT_EQ(policy_class_for(WorkloadType::kInference), PolicyClass::kP1);
  EXPECT_EQ(policy_class_for(WorkloadType::kDebugging), PolicyClass::kP2);
  EXPECT_EQ(policy_class_for(WorkloadType::kMaliciousFilter),
            PolicyClass::kP2);
  EXPECT_EQ(policy_class_for(WorkloadType::kReputation), PolicyClass::kP3);
  EXPECT_EQ(policy_class_for(WorkloadType::kProvenance), PolicyClass::kP3);
  EXPECT_EQ(policy_class_for(WorkloadType::kSchedulingPerf), PolicyClass::kP4);
  EXPECT_EQ(policy_class_for(WorkloadType::kHyperparamTracking),
            PolicyClass::kP4);
}

TEST(Taxonomy, PaperWorkloadSetsSized) {
  EXPECT_EQ(paper_workloads().size(), 10U);
  EXPECT_EQ(cacheagg_workloads().size(), 6U);
}

}  // namespace
}  // namespace flstore::fed
