// Logger thread-safety: concurrent writers and level changes must not race
// (the serving plane logs from worker threads). Run under TSan in CI.
#include "common/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace flstore {
namespace {

struct LevelGuard {
  LogLevel saved = Logger::level();
  ~LevelGuard() { Logger::set_level(saved); }
};

TEST(Logger, LevelRoundTrips) {
  const LevelGuard guard;
  Logger::set_level(LogLevel::kDebug);
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  Logger::set_level(LogLevel::kOff);
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
}

TEST(Logger, FilteredMacroSkipsTheWrite) {
  const LevelGuard guard;
  Logger::set_level(LogLevel::kOff);
  // With the level above every message, the macro short-circuits before
  // building the LogLine: the streamed operands are never evaluated and
  // nothing reaches the sink.
  FLSTORE_DEBUG << "never formatted";
  FLSTORE_WARN << "never formatted";
  SUCCEED();
}

TEST(Logger, ConcurrentWritersAndLevelChangesDoNotRace) {
  const LevelGuard guard;
  Logger::set_level(LogLevel::kOff);  // keep CI output quiet; still races
                                      // through level() if unsynchronized
  std::vector<std::thread> threads;
  threads.reserve(5);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        Logger::write(LogLevel::kDebug,
                      "writer " + std::to_string(t) + " line " +
                          std::to_string(i));
      }
    });
  }
  threads.emplace_back([] {
    for (int i = 0; i < 100; ++i) {
      Logger::set_level(i % 2 == 0 ? LogLevel::kOff : LogLevel::kError);
    }
  });
  for (auto& th : threads) th.join();
  Logger::set_level(LogLevel::kOff);
  SUCCEED();
}

}  // namespace
}  // namespace flstore
