#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore {
namespace {

TEST(SampleSet, MeanAndSum) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleSet, AddN) {
  SampleSet s;
  s.add_n(5.0, 4);
  EXPECT_EQ(s.size(), 4U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(SampleSet, PercentileSingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSet, SummaryOrderingInvariant) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  const auto sum = s.summary();
  EXPECT_EQ(sum.count, 100U);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 100.0);
  EXPECT_LE(sum.min, sum.q1);
  EXPECT_LE(sum.q1, sum.median);
  EXPECT_LE(sum.median, sum.q3);
  EXPECT_LE(sum.q3, sum.max);
  EXPECT_DOUBLE_EQ(sum.mean, 50.5);
}

TEST(SampleSet, AddAfterSummaryStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  (void)s.summary();
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(SampleSet, EmptyThrowsOnStats) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), InternalError);
  EXPECT_THROW((void)s.summary(), InternalError);
}

TEST(PercentReduction, Basic) {
  EXPECT_DOUBLE_EQ(percent_reduction(100.0, 29.0), 71.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 20.0), -100.0);
}

TEST(PercentReduction, ZeroBaselineThrows) {
  EXPECT_THROW((void)percent_reduction(0.0, 1.0), InternalError);
}

}  // namespace
}  // namespace flstore
