#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace flstore {
namespace {

TEST(MetadataKey, FactoryHelpers) {
  const auto u = MetadataKey::update(3, 7);
  EXPECT_EQ(u.kind, ObjectKind::ClientUpdate);
  EXPECT_EQ(u.client, 3);
  EXPECT_EQ(u.round, 7);

  const auto a = MetadataKey::aggregate(9);
  EXPECT_EQ(a.kind, ObjectKind::AggregatedModel);
  EXPECT_EQ(a.client, kNoClient);

  const auto m = MetadataKey::metadata(2);
  EXPECT_EQ(m.kind, ObjectKind::RoundMetadata);
}

TEST(MetadataKey, EqualityAndOrdering) {
  EXPECT_EQ(MetadataKey::update(1, 2), MetadataKey::update(1, 2));
  EXPECT_NE(MetadataKey::update(1, 2), MetadataKey::update(1, 3));
  EXPECT_NE(MetadataKey::update(1, 2), MetadataKey::aggregate(2));
  EXPECT_LT(MetadataKey::update(1, 2), MetadataKey::update(2, 2));
}

TEST(MetadataKey, ObjectNamesUnique) {
  std::unordered_set<std::string> names;
  for (RoundId r = 0; r < 20; ++r) {
    for (ClientId c = 0; c < 20; ++c) {
      names.insert(MetadataKey::update(c, r).object_name());
    }
    for (ClientId c = 0; c < 20; ++c) {
      names.insert(MetadataKey::metrics(c, r).object_name());
    }
    names.insert(MetadataKey::aggregate(r).object_name());
    names.insert(MetadataKey::metadata(r).object_name());
  }
  EXPECT_EQ(names.size(), 2U * 20U * 20U + 40U);
}

TEST(MetadataKey, ObjectNameStable) {
  EXPECT_EQ(MetadataKey::update(17, 42).object_name(),
            "r000042/client_update/c0017");
}

TEST(MetadataKeyHash, FewCollisionsOnDenseGrid) {
  MetadataKeyHash h;
  std::unordered_set<std::size_t> hashes;
  int total = 0;
  for (RoundId r = 0; r < 100; ++r) {
    for (ClientId c = 0; c < 50; ++c) {
      hashes.insert(h(MetadataKey::update(c, r)));
      ++total;
    }
  }
  // FNV over 5000 distinct keys should be collision-free in 64-bit space.
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(total));
}

}  // namespace
}  // namespace flstore
