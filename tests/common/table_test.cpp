#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"app", "latency"});
  t.add_row({"debugging", "12.5"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("debugging"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "1"});
  t.add_row({"y", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1\ny,2\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(Fmt, Usd) {
  EXPECT_EQ(fmt_usd(0.0123), "$0.0123");
  EXPECT_EQ(fmt_usd(0.000012), "$0.000012");
  EXPECT_EQ(fmt_usd(0.0), "$0.0000");
}

TEST(Fmt, Pct) { EXPECT_EQ(fmt_pct(92.45), "92.5%"); }

TEST(Fmt, Bytes) {
  EXPECT_EQ(fmt_bytes(161.2), "161.2 MB");
  EXPECT_EQ(fmt_bytes(1580.0), "1.58 GB");
  EXPECT_EQ(fmt_bytes(0.5), "500.0 KB");
}

}  // namespace
}  // namespace flstore
