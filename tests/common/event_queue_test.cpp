#include "common/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace flstore {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3U);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(0.5, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2U);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(10.0, [&] { ++ran; });
  q.run(5.0);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1U);
  // Clock does not advance past executed events when work remains.
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, HorizonAdvancesClockWhenDrained) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run(5.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), InternalError);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(0.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ManyEventsDeterministic) {
  // Same schedule twice yields identical execution traces.
  auto run_once = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      q.schedule_at(static_cast<double>((i * 7919) % 100), [&order, i] {
        order.push_back(i);
      });
    }
    q.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace flstore
