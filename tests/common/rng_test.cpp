#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace flstore {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  // The fork itself advances the parent, but two forks with different salts
  // from identically seeded parents must agree.
  Rng p1(7);
  Rng p2(7);
  Rng c1 = p1.fork(3);
  Rng c2 = p2.fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(250, 10);
  EXPECT_EQ(sample.size(), 10U);
  std::set<std::int32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10U);
  for (const auto v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 250);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::int32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5U);
}

TEST(Rng, SampleCoversPoolOverManyDraws) {
  Rng rng(19);
  std::set<std::int32_t> seen;
  for (int i = 0; i < 300; ++i) {
    for (const auto v : rng.sample_without_replacement(20, 3)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 20U);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 0.9);
  double sum = 0.0;
  for (int i = 0; i < z.size(); ++i) sum += z.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostLikely) {
  ZipfDistribution z(50, 1.0);
  for (int i = 1; i < z.size(); ++i) {
    EXPECT_GE(z.pmf(0), z.pmf(i));
  }
}

TEST(Zipf, SamplesMatchPmfSkew) {
  ZipfDistribution z(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(z(rng))];
  // Empirical frequency of rank 0 should be near its pmf.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.02);
  // Monotone-ish decay: rank 0 clearly beats rank 9.
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfDistribution z(4, 0.0);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(z.pmf(i), 0.25, 1e-9);
}

TEST(Zipf, SamplesAlwaysInRange) {
  ZipfDistribution z(7, 1.2);
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const auto r = z(rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 7);
  }
}

TEST(Zipf, MaterializedCdfRejectsPopulationBeyondInt32) {
  // The CDF is O(n) memory and int32-ranked; an oversized population must
  // fail loudly (and point at ZipfSampler) instead of truncating.
  EXPECT_THROW(ZipfDistribution(std::int64_t{1} << 32, 0.9), InvalidArgument);
}

TEST(ZipfSampler, AgreesWithMaterializedCdfAtSmallN) {
  // Rejection-inversion and the exact CDF target the same distribution:
  // empirical head frequencies from the sampler must match the pmf.
  const ZipfDistribution exact(10, 1.0);
  const ZipfSampler sampler(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto r = sampler(rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 10);
    ++counts[static_cast<std::size_t>(r)];
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(i)]) / n,
                exact.pmf(i), 0.02);
  }
}

TEST(ZipfSampler, HandlesPopulationsFarBeyondInt32) {
  // 5 billion ranks — no CDF could hold this; setup and draws stay O(1).
  const std::int64_t n = std::int64_t{5'000'000'000};
  const ZipfSampler sampler(n, 1.1);
  Rng rng(41);
  std::int64_t max_seen = -1;
  for (int i = 0; i < 20000; ++i) {
    const auto r = sampler(rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    max_seen = std::max(max_seen, r);
  }
  // The tail is thin but present: some draw should land beyond int32 range.
  EXPECT_GT(max_seen, std::int64_t{std::numeric_limits<std::int32_t>::max()});
}

TEST(ZipfSampler, ExponentZeroIsRoughlyUniform) {
  const ZipfSampler sampler(1000, 0.0);
  Rng rng(43);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(sampler(rng));
  // Uniform over {0..999} has mean 499.5.
  EXPECT_NEAR(sum / n, 499.5, 15.0);
}

TEST(ZipfSampler, DeterministicGivenEqualRngState) {
  const ZipfSampler sampler(1'000'000, 0.9);
  Rng a(47), b(47);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler(a), sampler(b));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

}  // namespace
}  // namespace flstore
