#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace flstore {
namespace {

TEST(Serialize, RoundTrip) {
  Rng rng(1);
  const auto t = ops::random_normal(257, rng);
  const auto blob = serialize_tensor(t);
  EXPECT_EQ(blob.size(), serialized_size(t.dim()));
  EXPECT_EQ(deserialize_tensor(blob), t);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  const Tensor t;
  EXPECT_EQ(deserialize_tensor(serialize_tensor(t)), t);
}

TEST(Serialize, CorruptPayloadDetected) {
  Rng rng(2);
  auto blob = serialize_tensor(ops::random_normal(64, rng));
  blob[20] ^= 0xFF;
  EXPECT_THROW((void)deserialize_tensor(blob), InvalidArgument);
}

TEST(Serialize, CorruptChecksumDetected) {
  Rng rng(3);
  auto blob = serialize_tensor(ops::random_normal(8, rng));
  blob.back() ^= 0x01;
  EXPECT_THROW((void)deserialize_tensor(blob), InvalidArgument);
}

TEST(Serialize, BadMagicDetected) {
  Rng rng(4);
  auto blob = serialize_tensor(ops::random_normal(8, rng));
  blob[0] = 'X';
  EXPECT_THROW((void)deserialize_tensor(blob), InvalidArgument);
}

TEST(Serialize, TruncatedDetected) {
  Rng rng(5);
  auto blob = serialize_tensor(ops::random_normal(8, rng));
  blob.resize(blob.size() - 3);
  EXPECT_THROW((void)deserialize_tensor(blob), InvalidArgument);
}

TEST(Serialize, TooSmallDetected) {
  Blob blob{1, 2, 3};
  EXPECT_THROW((void)deserialize_tensor(blob), InvalidArgument);
}

TEST(Checksum, SensitiveToOrder) {
  const Blob a{1, 2, 3};
  const Blob b{3, 2, 1};
  EXPECT_NE(checksum(a), checksum(b));
}

class SerializeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSweep, RoundTripManySizes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto dim = static_cast<std::size_t>(GetParam());
  const auto t = ops::random_normal(dim, rng);
  EXPECT_EQ(deserialize_tensor(serialize_tensor(t)), t);
}

INSTANTIATE_TEST_SUITE_P(Dims, SerializeSweep,
                         ::testing::Values(1, 2, 7, 16, 255, 256, 1024));

}  // namespace
}  // namespace flstore
