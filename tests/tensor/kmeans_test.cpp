#include "tensor/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace flstore {
namespace {

// Three well-separated blobs in 8-D.
std::vector<Tensor> blobs(Rng& rng, int per_cluster, double sep) {
  std::vector<Tensor> pts;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      auto t = ops::random_normal(8, rng, 0.0, 0.3);
      t[0] += static_cast<float>(sep * c);
      pts.push_back(std::move(t));
    }
  }
  return pts;
}

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(1);
  const auto pts = blobs(rng, 20, 10.0);
  const auto res = kmeans(pts, 3, rng);
  // All points of one blob share a label, labels differ across blobs.
  std::set<std::int32_t> labels;
  for (int c = 0; c < 3; ++c) {
    const auto first = res.assignment[static_cast<std::size_t>(c * 20)];
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(res.assignment[static_cast<std::size_t>(c * 20 + i)], first);
    }
    labels.insert(first);
  }
  EXPECT_EQ(labels.size(), 3U);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(2);
  const auto pts = blobs(rng, 15, 5.0);
  Rng r1(3), r2(3);
  const auto k1 = kmeans(pts, 1, r1);
  const auto k3 = kmeans(pts, 3, r2);
  EXPECT_LT(k3.inertia, k1.inertia);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(4);
  std::vector<Tensor> pts;
  for (int i = 0; i < 5; ++i) pts.push_back(ops::random_normal(4, rng));
  const auto res = kmeans(pts, 5, rng);
  EXPECT_NEAR(res.inertia, 0.0, 1e-9);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  Rng rng(5);
  std::vector<Tensor> pts;
  for (int i = 0; i < 10; ++i) pts.push_back(ops::random_normal(4, rng));
  const auto res = kmeans(pts, 1, rng);
  const auto m = ops::mean(pts);
  EXPECT_LT(ops::l2_distance(res.centroids[0], m), 1e-4);
}

TEST(KMeans, AssignmentInRange) {
  Rng rng(6);
  const auto pts = blobs(rng, 10, 2.0);
  const auto res = kmeans(pts, 4, rng);
  EXPECT_EQ(res.assignment.size(), pts.size());
  for (const auto a : res.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng_a(7), rng_b(7);
  Rng data(8);
  const auto pts = blobs(data, 10, 3.0);
  const auto a = kmeans(pts, 3, rng_a);
  const auto b = kmeans(pts, 3, rng_b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, RejectsBadK) {
  Rng rng(9);
  std::vector<Tensor> pts{ops::random_normal(4, rng)};
  EXPECT_THROW((void)kmeans(pts, 0, rng), InternalError);
  EXPECT_THROW((void)kmeans(pts, 2, rng), InternalError);
  EXPECT_THROW((void)kmeans({}, 1, rng), InternalError);
}

TEST(KMeans, IdenticalPointsDoNotCrash) {
  Rng rng(10);
  std::vector<Tensor> pts(6, Tensor(4, 1.0F));
  const auto res = kmeans(pts, 2, rng);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

// Parameterized: inertia is monotone non-increasing in k on the same data.
class KMeansMonotone : public ::testing::TestWithParam<int> {};

TEST_P(KMeansMonotone, InertiaNonIncreasingInK) {
  Rng data(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto pts = blobs(data, 12, 4.0);
  double prev = -1.0;
  for (int k = 1; k <= 5; ++k) {
    Rng rng(42);
    const auto res = kmeans(pts, k, rng);
    if (prev >= 0.0) {
      // Allow tiny slack: Lloyd's is a local optimum, but with kmeans++ and
      // separated blobs the trend must hold.
      EXPECT_LE(res.inertia, prev * 1.05);
    }
    prev = res.inertia;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansMonotone, ::testing::Range(0, 5));

}  // namespace
}  // namespace flstore
