#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace flstore {
namespace {

Tensor t3(float a, float b, float c) {
  return Tensor(std::vector<float>{a, b, c});
}

TEST(Ops, DotBasic) {
  EXPECT_DOUBLE_EQ(ops::dot(t3(1, 2, 3), t3(4, 5, 6)), 32.0);
}

TEST(Ops, DotDimMismatchThrows) {
  EXPECT_THROW((void)ops::dot(Tensor(3), Tensor(4)), InternalError);
}

TEST(Ops, Norms) {
  EXPECT_DOUBLE_EQ(ops::l2_norm(t3(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(ops::l2_distance(t3(1, 1, 1), t3(1, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(ops::l2_distance(t3(0, 0, 0), t3(3, 4, 0)), 5.0);
}

TEST(Ops, CosineIdenticalIsOne) {
  const auto v = t3(0.5, -2, 1);
  EXPECT_NEAR(ops::cosine_similarity(v, v), 1.0, 1e-6);
}

TEST(Ops, CosineOppositeIsMinusOne) {
  const auto v = t3(1, 2, 3);
  auto w = v;
  ops::scale(w, -1.0);
  EXPECT_NEAR(ops::cosine_similarity(v, w), -1.0, 1e-6);
}

TEST(Ops, CosineOrthogonalIsZero) {
  EXPECT_NEAR(ops::cosine_similarity(t3(1, 0, 0), t3(0, 1, 0)), 0.0, 1e-9);
}

TEST(Ops, CosineZeroVectorIsZero) {
  EXPECT_DOUBLE_EQ(ops::cosine_similarity(t3(0, 0, 0), t3(1, 2, 3)), 0.0);
}

TEST(Ops, CosineScaleInvariant) {
  const auto a = t3(1, 2, 3);
  auto b = t3(2, -1, 0.5);
  const double before = ops::cosine_similarity(a, b);
  ops::scale(b, 42.0);
  EXPECT_NEAR(ops::cosine_similarity(a, b), before, 1e-6);
}

TEST(Ops, AxpyAndAddSub) {
  auto y = t3(1, 1, 1);
  ops::axpy(2.0, t3(1, 2, 3), y);
  EXPECT_EQ(y, t3(3, 5, 7));
  EXPECT_EQ(ops::add(t3(1, 2, 3), t3(1, 1, 1)), t3(2, 3, 4));
  EXPECT_EQ(ops::sub(t3(1, 2, 3), t3(1, 1, 1)), t3(0, 1, 2));
}

TEST(Ops, MeanOfTensors) {
  const auto m = ops::mean({t3(0, 0, 0), t3(2, 4, 6)});
  EXPECT_EQ(m, t3(1, 2, 3));
}

TEST(Ops, WeightedMeanRespectsWeights) {
  const auto m = ops::weighted_mean({t3(0, 0, 0), t3(4, 4, 4)}, {3.0, 1.0});
  EXPECT_EQ(m, t3(1, 1, 1));
}

TEST(Ops, WeightedMeanRejectsBadInput) {
  EXPECT_THROW((void)ops::weighted_mean({}, {}), InternalError);
  EXPECT_THROW((void)ops::weighted_mean({t3(1, 1, 1)}, {0.0}), InternalError);
  EXPECT_THROW((void)ops::weighted_mean({t3(1, 1, 1)}, {1.0, 1.0}),
               InternalError);
}

TEST(Ops, MeanIdempotentOnIdenticalInputs) {
  const auto v = t3(1.5, -2.25, 0.125);  // exactly representable
  EXPECT_EQ(ops::mean({v, v, v}), v);
}

TEST(Ops, RandomNormalDeterministicPerSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(ops::random_normal(16, a), ops::random_normal(16, b));
}

TEST(Ops, Argmax) {
  EXPECT_EQ(ops::argmax(t3(1, 5, 3)), 1U);
  EXPECT_EQ(ops::argmax(t3(7, 7, 7)), 0U);  // first on ties
  EXPECT_THROW((void)ops::argmax(Tensor{}), InternalError);
}

TEST(Ops, TopKOrderedDescending) {
  const auto idx = ops::top_k({0.1, 0.9, 0.5, 0.7}, 3);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3, 2}));
}

TEST(Ops, TopKStableOnTies) {
  const auto idx = ops::top_k({0.5, 0.5, 0.5}, 2);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1}));
}

TEST(Ops, QuantizeBoundsError) {
  Rng rng(3);
  const auto t = ops::random_normal(128, rng);
  const auto q8 = ops::quantize(t, 8);
  EXPECT_DOUBLE_EQ(q8.compression_ratio, 4.0);
  float max_abs = 0.0F;
  for (std::size_t i = 0; i < t.dim(); ++i) {
    max_abs = std::max(max_abs, std::abs(t[i]));
  }
  // Error bounded by half a quantization step.
  const double step = max_abs / 127.0;
  EXPECT_LE(q8.max_abs_error, step * 0.51);
}

TEST(Ops, QuantizeMoreBitsLessError) {
  Rng rng(4);
  const auto t = ops::random_normal(256, rng);
  const auto q4 = ops::quantize(t, 4);
  const auto q8 = ops::quantize(t, 8);
  EXPECT_LT(q8.max_abs_error, q4.max_abs_error);
}

TEST(Ops, QuantizeZeroTensorExact) {
  const auto q = ops::quantize(Tensor(16, 0.0F), 8);
  EXPECT_DOUBLE_EQ(q.max_abs_error, 0.0);
}

// Property sweep: triangle inequality for l2_distance on random tensors.
class TriangleInequality : public ::testing::TestWithParam<int> {};

TEST_P(TriangleInequality, Holds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto a = ops::random_normal(64, rng);
  const auto b = ops::random_normal(64, rng);
  const auto c = ops::random_normal(64, rng);
  EXPECT_LE(ops::l2_distance(a, c),
            ops::l2_distance(a, b) + ops::l2_distance(b, c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleInequality, ::testing::Range(0, 20));

// Property sweep: cosine is always in [-1, 1].
class CosineRange : public ::testing::TestWithParam<int> {};

TEST_P(CosineRange, Bounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
  const auto a = ops::random_normal(32, rng, 0.0, 10.0);
  const auto b = ops::random_normal(32, rng, 5.0, 0.01);
  const double c = ops::cosine_similarity(a, b);
  EXPECT_GE(c, -1.0);
  EXPECT_LE(c, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosineRange, ::testing::Range(0, 20));

}  // namespace
}  // namespace flstore
