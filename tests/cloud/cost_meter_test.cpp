#include "cloud/cost_meter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore {
namespace {

TEST(CostMeter, ChargesAccumulate) {
  CostMeter m;
  m.charge(CostCategory::kComputation, 0.5);
  m.charge(CostCategory::kComputation, 0.25);
  m.charge(CostCategory::kCommunication, 1.0);
  EXPECT_DOUBLE_EQ(m.get(CostCategory::kComputation), 0.75);
  EXPECT_DOUBLE_EQ(m.total(), 1.75);
  EXPECT_DOUBLE_EQ(m.serving(), 1.75);
}

TEST(CostMeter, ServingExcludesInfrastructure) {
  CostMeter m;
  m.charge(CostCategory::kComputation, 1.0);
  m.charge(CostCategory::kStorageService, 2.0);
  m.charge(CostCategory::kCacheService, 4.0);
  m.charge(CostCategory::kKeepAlive, 8.0);
  EXPECT_DOUBLE_EQ(m.serving(), 1.0);
  EXPECT_DOUBLE_EQ(m.total(), 15.0);
}

TEST(CostMeter, MergeAdds) {
  CostMeter a, b;
  a.charge(CostCategory::kComputation, 1.0);
  b.charge(CostCategory::kComputation, 2.0);
  b.charge(CostCategory::kKeepAlive, 0.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(CostCategory::kComputation), 3.0);
  EXPECT_DOUBLE_EQ(a.get(CostCategory::kKeepAlive), 0.5);
}

TEST(CostMeter, ResetZeroes) {
  CostMeter m;
  m.charge(CostCategory::kCacheService, 9.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(CostMeter, NegativeChargeRejected) {
  CostMeter m;
  EXPECT_THROW(m.charge(CostCategory::kComputation, -0.1), InternalError);
}

TEST(CostMeter, BreakdownMentionsAllCategories) {
  CostMeter m;
  m.charge(CostCategory::kCommunication, 0.125);
  const auto s = m.breakdown();
  EXPECT_NE(s.find("communication=$0.125"), std::string::npos);
  EXPECT_NE(s.find("computation=$0"), std::string::npos);
  EXPECT_NE(s.find("keep_alive"), std::string::npos);
}

}  // namespace
}  // namespace flstore
