#include "cloud/object_store.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"

namespace flstore {
namespace {

using units::MB;

ObjectStore make_store() {
  return ObjectStore(Link{0.08, 100.0 * 1e6}, PricingCatalog::aws());
}

TEST(ObjectStore, PutGetRoundTrip) {
  auto store = make_store();
  Rng rng(1);
  const auto t = ops::random_normal(64, rng);
  store.put("a", serialize_tensor(t), 100 * MB);

  const auto got = store.get("a");
  ASSERT_TRUE(got.found);
  EXPECT_EQ(deserialize_tensor(*got.blob), t);
  EXPECT_EQ(got.logical_bytes, 100 * MB);
  // Latency reflects the *logical* size: 80ms + 100MB / 100MB/s = 1.08s.
  EXPECT_NEAR(got.latency_s, 1.08, 1e-9);
}

TEST(ObjectStore, MissPaysControlPlaneLatencyOnly) {
  auto store = make_store();
  const auto got = store.get("nope");
  EXPECT_FALSE(got.found);
  EXPECT_EQ(got.blob, nullptr);
  EXPECT_NEAR(got.latency_s, 0.08, 1e-12);
  EXPECT_GT(got.request_fee_usd, 0.0);
}

TEST(ObjectStore, LogicalBytesDefaultToBlobSize) {
  auto store = make_store();
  store.put("k", Blob(1000, 7));
  EXPECT_EQ(store.get("k").logical_bytes, 1000U);
}

TEST(ObjectStore, OverwriteReplacesAndAdjustsStoredBytes) {
  auto store = make_store();
  store.put("k", Blob{1}, 10 * MB);
  EXPECT_EQ(store.stored_logical_bytes(), 10 * MB);
  store.put("k", Blob{2}, 4 * MB);
  EXPECT_EQ(store.stored_logical_bytes(), 4 * MB);
  EXPECT_EQ(store.object_count(), 1U);
  EXPECT_EQ((*store.get("k").blob)[0], 2);
}

TEST(ObjectStore, RemoveFreesBytes) {
  auto store = make_store();
  store.put("a", Blob{1}, 5 * MB);
  store.put("b", Blob{2}, 7 * MB);
  EXPECT_TRUE(store.remove("a"));
  EXPECT_FALSE(store.remove("a"));
  EXPECT_EQ(store.stored_logical_bytes(), 7 * MB);
  EXPECT_FALSE(store.get("a").found);
}

TEST(ObjectStore, CountsOperations) {
  auto store = make_store();
  store.put("a", Blob{1});
  (void)store.get("a");
  (void)store.get("missing");
  EXPECT_EQ(store.put_count(), 1U);
  EXPECT_EQ(store.get_count(), 2U);
}

TEST(ObjectStore, StorageCostScalesWithContents) {
  auto store = make_store();
  EXPECT_DOUBLE_EQ(store.storage_cost(3600.0), 0.0);
  store.put("a", Blob{1}, units::Bytes{1000} * MB);  // 1 GB
  const double month = 30.0 * 86400.0;
  EXPECT_NEAR(store.storage_cost(month), 0.023, 1e-9);
}

TEST(ObjectStore, PutLatencyUsesLogicalSize) {
  auto store = make_store();
  const auto res = store.put("a", Blob{1}, 200 * MB);
  EXPECT_NEAR(res.latency_s, 0.08 + 2.0, 1e-9);
}

TEST(ObjectStore, SharedBlobSurvivesOverwrite) {
  // A reader holding the blob pointer must not be invalidated by a PUT.
  auto store = make_store();
  store.put("k", Blob{1, 2, 3});
  const auto first = store.get("k").blob;
  store.put("k", Blob{9});
  EXPECT_EQ(first->size(), 3U);
  EXPECT_EQ(store.get("k").blob->size(), 1U);
}

}  // namespace
}  // namespace flstore
