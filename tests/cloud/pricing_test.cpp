#include "cloud/pricing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore {
namespace {

using units::GB;

const PricingCatalog& p = PricingCatalog::aws();

TEST(Pricing, LambdaComputeCost) {
  // 2.8s at 4GB: 2.8 * 4 * 1.66667e-5 + invocation fee.
  const double c = p.lambda_compute_cost(2.8, 4 * GB);
  EXPECT_NEAR(c, 2.8 * 4 * 0.0000166667 + 0.0000002, 1e-9);
}

TEST(Pricing, LambdaZeroDurationStillPaysInvocation) {
  EXPECT_NEAR(p.lambda_compute_cost(0.0, 1 * GB), 0.0000002, 1e-12);
}

TEST(Pricing, VmHourCost) {
  EXPECT_NEAR(p.vm_time_cost(3600.0), 0.922, 1e-9);
  EXPECT_NEAR(p.vm_time_cost(60.0), 0.922 / 60.0, 1e-9);
}

TEST(Pricing, S3StorageCost) {
  // 1000 GB for a month = $23.
  EXPECT_NEAR(p.s3_storage_cost(1000 * GB, 30.0 * 86400.0), 23.0, 1e-6);
}

TEST(Pricing, CacheNodesForWorkingSet) {
  EXPECT_EQ(p.cache_nodes_for(0), 0);
  EXPECT_EQ(p.cache_nodes_for(1 * GB), 1);
  EXPECT_EQ(p.cache_nodes_for(p.cache_node_capacity), 1);
  EXPECT_EQ(p.cache_nodes_for(p.cache_node_capacity + 1), 2);
  // 1.6 TB working set (EfficientNet, 1000 rounds x 10 clients).
  const auto nodes = p.cache_nodes_for(static_cast<units::Bytes>(1.6e12));
  EXPECT_EQ(nodes, 61);
}

TEST(Pricing, CacheNodeHourCost) {
  EXPECT_NEAR(p.cache_nodes_cost(2, 3600.0), 2 * 0.411, 1e-9);
  EXPECT_DOUBLE_EQ(p.cache_nodes_cost(0, 3600.0), 0.0);
}

TEST(Pricing, InterRegionTransferCost) {
  // 50 GB across a region boundary at $0.02/GB; the far (continent-
  // crossing) rate is strictly dearer.
  EXPECT_NEAR(p.interregion_transfer_cost(50 * GB), 50 * 0.02, 1e-9);
  EXPECT_NEAR(p.interregion_transfer_cost(50 * GB, /*far=*/true), 50 * 0.09,
              1e-9);
  EXPECT_GT(p.far_region_usd_per_gb, p.interregion_usd_per_gb);
  EXPECT_DOUBLE_EQ(p.interregion_transfer_cost(0), 0.0);
}

TEST(Pricing, KeepAliveMonthlyCost) {
  // Paper §4.5: pinging every minute costs $0.0087 per instance-month.
  EXPECT_NEAR(p.keepalive_cost(1, 30.0 * 86400.0), 0.0087, 1e-9);
  EXPECT_NEAR(p.keepalive_cost(5, units::hours(50)),
              5 * 0.0087 * 50.0 / (30.0 * 24.0), 1e-9);
}

TEST(Pricing, NegativeTimeRejected) {
  EXPECT_THROW((void)p.vm_time_cost(-1.0), InternalError);
  EXPECT_THROW((void)p.lambda_compute_cost(-0.1, GB), InternalError);
}

}  // namespace
}  // namespace flstore
