#include "cloud/memcache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore {
namespace {

using units::GB;
using units::MB;

std::shared_ptr<const Blob> blob(std::uint8_t v) {
  return std::make_shared<const Blob>(Blob{v});
}

MemCacheService make_cache(int nodes = 1) {
  return MemCacheService(nodes, Link{0.001, 250.0 * 1e6},
                         PricingCatalog::aws());
}

TEST(MemCache, HitAfterPut) {
  auto c = make_cache();
  c.put("a", blob(1), 100 * MB);
  const auto got = c.get("a");
  ASSERT_TRUE(got.hit);
  EXPECT_EQ((*got.blob)[0], 1);
  EXPECT_NEAR(got.latency_s, 0.001 + 0.4, 1e-9);
  EXPECT_EQ(c.hits(), 1U);
}

TEST(MemCache, MissCheap) {
  auto c = make_cache();
  const auto got = c.get("missing");
  EXPECT_FALSE(got.hit);
  EXPECT_NEAR(got.latency_s, 0.001, 1e-12);
  EXPECT_EQ(c.misses(), 1U);
}

TEST(MemCache, CapacityFromNodes) {
  auto c1 = make_cache(1);
  auto c3 = make_cache(3);
  EXPECT_EQ(c3.capacity(), 3 * c1.capacity());
  EXPECT_EQ(c1.capacity(), PricingCatalog::aws().cache_node_capacity);
}

TEST(MemCache, LruEvictionOrder) {
  auto c = make_cache();
  const auto cap = c.capacity();
  const auto third = cap / 3 + 1;  // three objects overflow
  c.put("a", blob(1), third);
  c.put("b", blob(2), third);
  // Touch "a" so "b" is the LRU victim.
  (void)c.get("a");
  c.put("c", blob(3), third);
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
  EXPECT_EQ(c.evictions(), 1U);
}

TEST(MemCache, UsedBytesTracked) {
  auto c = make_cache();
  c.put("a", blob(1), 10 * MB);
  c.put("b", blob(2), 5 * MB);
  EXPECT_EQ(c.used(), 15 * MB);
  c.put("a", blob(9), 2 * MB);  // replace shrinks usage
  EXPECT_EQ(c.used(), 7 * MB);
}

TEST(MemCache, ObjectLargerThanCapacityRejected) {
  auto c = make_cache();
  c.put("big", blob(1), c.capacity() + 1);
  EXPECT_FALSE(c.contains("big"));
  EXPECT_EQ(c.used(), 0U);
}

TEST(MemCache, EvictsMultipleToFit) {
  auto c = make_cache();
  const auto cap = c.capacity();
  c.put("a", blob(1), cap / 2);
  c.put("b", blob(2), cap / 2);
  c.put("big", blob(3), cap - 10);
  EXPECT_FALSE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("big"));
  EXPECT_EQ(c.evictions(), 2U);
}

TEST(MemCache, ProvisioningCostByNodeHours) {
  auto c = make_cache(4);
  EXPECT_NEAR(c.provisioning_cost(3600.0), 4 * 0.411, 1e-9);
}

TEST(MemCache, RequiresAtLeastOneNode) {
  EXPECT_THROW(MemCacheService(0, Link{0.001, 1e8}, PricingCatalog::aws()),
               InternalError);
}

TEST(MemCache, GetRefreshesLruOnEveryAccess) {
  auto c = make_cache();
  const auto cap = c.capacity();
  const auto half = cap / 2 + 1;
  c.put("a", blob(1), half);
  c.put("b", blob(2), half);  // evicts a
  EXPECT_FALSE(c.contains("a"));
  (void)c.get("b");
  c.put("c", blob(3), half);  // evicts... only b present; b was touched
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
}

}  // namespace
}  // namespace flstore
