// Coalescer: single-flight deduplication of cold-store fetches, in
// simulated time, including the end-to-end hook through FLStore's miss path.
#include "serve/coalescer.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "backend/object_store_backend.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "sim/calibration.hpp"

namespace flstore::serve {
namespace {

ObjectStore make_store() {
  return ObjectStore(sim::objstore_link(), PricingCatalog::aws());
}

TEST(Coalescer, ConcurrentMissesShareOneFetch) {
  auto store = make_store();
  store.put("k", Blob(64), 80 * units::MB);  // 10 s transfer at 8 MB/s
  backend::ObjectStoreBackend cold(store);
  Coalescer co;

  const auto lead = co.fetch("k", cold, 100.0);
  ASSERT_TRUE(lead.found);
  EXPECT_GT(lead.request_fee_usd, 0.0);
  EXPECT_GT(lead.latency_s, 9.0);

  // N "concurrent" misses: arrivals inside the leader's transfer window.
  for (int i = 1; i <= 4; ++i) {
    const double now = 100.0 + 2.0 * i;  // 102, 104, 106, 108 < ready ~110
    const auto join = co.fetch("k", cold, now);
    ASSERT_TRUE(join.found);
    EXPECT_DOUBLE_EQ(join.request_fee_usd, 0.0);  // fee paid once, by the lead
    // The joiner only waits out the remainder of the stream.
    EXPECT_NEAR(join.latency_s, lead.latency_s - 2.0 * i, 1e-9);
  }

  // Exactly one real cold-store request was issued.
  EXPECT_EQ(store.get_count(), 1U);
  const auto stats = co.stats();
  EXPECT_EQ(stats.leads, 1U);
  EXPECT_EQ(stats.joins, 4U);
  EXPECT_GT(stats.fees_saved_usd, 0.0);
  EXPECT_GT(stats.wait_saved_s, 0.0);
}

TEST(Coalescer, ExpiredWindowLeadsAFreshFetch) {
  auto store = make_store();
  store.put("k", Blob(64), 80 * units::MB);
  backend::ObjectStoreBackend cold(store);
  Coalescer co;
  const auto first = co.fetch("k", cold, 0.0);
  // Past the window: the object aged out of every cache again; refetch.
  const auto second = co.fetch("k", cold, first.latency_s + 1.0);
  EXPECT_GT(second.request_fee_usd, 0.0);
  EXPECT_EQ(store.get_count(), 2U);
  EXPECT_EQ(co.stats().leads, 2U);
  EXPECT_EQ(co.stats().joins, 0U);
}

TEST(Coalescer, MissOpensNoWindow) {
  auto store = make_store();
  backend::ObjectStoreBackend cold(store);
  Coalescer co;
  const auto a = co.fetch("absent", cold, 0.0);
  EXPECT_FALSE(a.found);
  EXPECT_GT(a.request_fee_usd, 0.0);  // control-plane round trip still billed
  // The object lands (ingest backup) and the next fetch must be real.
  store.put("absent", Blob(64), 1 * units::MB);
  const auto b = co.fetch("absent", cold, 0.05);
  EXPECT_TRUE(b.found);
  EXPECT_GT(b.request_fee_usd, 0.0);
}

TEST(Coalescer, ThreadSafeUnderHammering) {
  auto store = make_store();
  store.put("k", Blob(64), 80 * units::MB);
  backend::ObjectStoreBackend cold(store);
  Coalescer co;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&co, &cold] {
      for (int j = 0; j < 100; ++j) {
        const auto got = co.fetch("k", cold, 1.0);
        ASSERT_TRUE(got.found);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Same simulated instant from every thread: one lead, the rest joins.
  const auto stats = co.stats();
  EXPECT_EQ(stats.leads, 1U);
  EXPECT_EQ(stats.joins, 799U);
  EXPECT_EQ(store.get_count(), 1U);
}

// End-to-end: two cache shards of one tenant share the cold store and the
// coalescer. Both miss on the same aggregate; the second serve piggybacks —
// one object-store GET, no second request fee.
TEST(CoalescerFLStore, TwoShardsShareOneColdFetch) {
  fed::FLJobConfig job_cfg;
  job_cfg.model = "resnet18";
  job_cfg.pool_size = 20;
  job_cfg.clients_per_round = 4;
  job_cfg.rounds = 10;
  job_cfg.seed = 3;
  fed::FLJob job(job_cfg);
  auto cold = make_store();
  Coalescer co;

  core::FLStoreConfig cfg;
  cfg.policy.mode = core::PolicyMode::kLru;  // demand-fill: first touch misses
  core::FLStore shard_a(cfg, job, cold);
  cfg.backup_to_cold = false;  // shard B must not duplicate the backup puts
  core::FLStore shard_b(cfg, job, cold);
  shard_a.set_cold_fetch_interceptor(&co);
  shard_b.set_cold_fetch_interceptor(&co);

  shard_a.ingest_round(job.make_round(0), 0.0);
  const auto puts_after_ingest = cold.put_count();

  fed::NonTrainingRequest req;
  req.type = fed::WorkloadType::kInference;  // needs exactly aggregate(0)
  req.round = 0;

  req.id = 1;
  const auto a = shard_a.serve(req, 10.0);
  ASSERT_EQ(a.misses, 1U);
  const auto gets_after_a = cold.get_count();

  // Shard B misses the same key while A's fetch is still streaming.
  req.id = 2;
  const auto b = shard_b.serve(req, 11.0);
  ASSERT_EQ(b.misses, 1U);
  EXPECT_EQ(cold.get_count(), gets_after_a);  // no second GET
  EXPECT_EQ(co.stats().joins, 1U);
  // B's bill is smaller: no request fee and less blocked function time.
  EXPECT_LT(b.cost_usd, a.cost_usd);
  EXPECT_LT(b.comm_s, a.comm_s);
  // Result write-backs aside, B triggered no extra backup puts.
  EXPECT_EQ(cold.put_count(), puts_after_ingest + 2);  // two result objects
}

}  // namespace
}  // namespace flstore::serve
