// RequestScheduler: class priorities, FIFO-within-class, admission control,
// and the SLO-aware (EDF) promotion of latency-critical work.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flstore::serve {
namespace {

fed::NonTrainingRequest request(RequestId id, fed::WorkloadType type,
                                double arrival = 0.0) {
  fed::NonTrainingRequest req;
  req.id = id;
  req.type = type;
  req.round = 0;
  req.arrival_s = arrival;
  return req;
}

SchedulerConfig config(SchedPolicy policy) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  return cfg;
}

TEST(Scheduler, StaticPriorityServesP1BeforeBatchClasses) {
  RequestScheduler sched(config(SchedPolicy::kStatic));
  // Arrival order: P2 analytics, P3 track, P4 metadata, P1 inference.
  ASSERT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  ASSERT_TRUE(sched.admit(request(2, fed::WorkloadType::kReputation), 0.1));
  ASSERT_TRUE(sched.admit(request(3, fed::WorkloadType::kSchedulingPerf), 0.2));
  ASSERT_TRUE(sched.admit(request(4, fed::WorkloadType::kInference), 0.3));
  // Dispatch order: P1 > P4 > P3 > P2.
  EXPECT_EQ(sched.pop(1.0).id, 4U);
  EXPECT_EQ(sched.pop(1.0).id, 3U);
  EXPECT_EQ(sched.pop(1.0).id, 2U);
  EXPECT_EQ(sched.pop(1.0).id, 1U);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, FifoWithinClass) {
  RequestScheduler sched(config(SchedPolicy::kStatic));
  for (RequestId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(sched.admit(
        request(id, fed::WorkloadType::kClustering, 0.1 * double(id)), 0.1 * double(id)));
  }
  for (RequestId id = 1; id <= 5; ++id) {
    EXPECT_EQ(sched.pop(1.0).id, id);
  }
}

TEST(Scheduler, FifoPolicyIsClassBlind) {
  RequestScheduler sched(config(SchedPolicy::kFifo));
  ASSERT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  ASSERT_TRUE(sched.admit(request(2, fed::WorkloadType::kInference), 0.1));
  ASSERT_TRUE(sched.admit(request(3, fed::WorkloadType::kClustering), 0.2));
  EXPECT_EQ(sched.pop(1.0).id, 1U);
  EXPECT_EQ(sched.pop(1.0).id, 2U);
  EXPECT_EQ(sched.pop(1.0).id, 3U);
}

TEST(Scheduler, AdmissionControlRejectsWhenClassQueueFull) {
  auto cfg = config(SchedPolicy::kStatic);
  cfg.class_queue_limit = 2;
  RequestScheduler sched(cfg);
  EXPECT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  EXPECT_TRUE(sched.admit(request(2, fed::WorkloadType::kClustering), 0.0));
  // Third P2 is shed; another class still has room.
  EXPECT_FALSE(sched.admit(request(3, fed::WorkloadType::kClustering), 0.0));
  EXPECT_TRUE(sched.admit(request(4, fed::WorkloadType::kInference), 0.0));
  EXPECT_EQ(sched.rejected(), 1U);
  EXPECT_EQ(sched.admitted(), 3U);
  EXPECT_EQ(sched.queued(), 3U);
  EXPECT_EQ(sched.queued(fed::PolicyClass::kP2), 2U);
}

TEST(Scheduler, SloPromotesLateArrivingP1AheadOfQueuedP2) {
  RequestScheduler sched(config(SchedPolicy::kSlo));
  // P2 has been queued since t=0 (deadline 0+120); P1 arrives at t=2
  // (deadline 2+1=3) and must still go first.
  ASSERT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  ASSERT_TRUE(sched.admit(request(2, fed::WorkloadType::kInference), 2.0));
  EXPECT_EQ(sched.pop(2.0).id, 2U);
  EXPECT_EQ(sched.pop(2.0).id, 1U);
}

TEST(Scheduler, SloEventuallyServesOverdueBatchWork) {
  RequestScheduler sched(config(SchedPolicy::kSlo));
  // P2 queued at t=0: deadline 120. A P1 arriving at t=130 has deadline
  // 131 > 120, so the overdue batch request finally wins — EDF is
  // starvation-free without a separate aging knob.
  ASSERT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  ASSERT_TRUE(sched.admit(request(2, fed::WorkloadType::kInference), 130.0));
  EXPECT_EQ(sched.pop(130.0).id, 1U);
  EXPECT_EQ(sched.pop(130.0).id, 2U);
}

TEST(Scheduler, StaticAgingGuardPreventsStarvation) {
  auto cfg = config(SchedPolicy::kStatic);
  cfg.aging_s = 10.0;
  RequestScheduler sched(cfg);
  ASSERT_TRUE(sched.admit(request(1, fed::WorkloadType::kClustering), 0.0));
  ASSERT_TRUE(sched.admit(request(2, fed::WorkloadType::kInference), 11.0));
  // The P2 head has waited 11 s > aging_s, so it beats the fresh P1.
  EXPECT_EQ(sched.pop(11.0).id, 1U);
  EXPECT_EQ(sched.pop(11.0).id, 2U);
}

TEST(Scheduler, PopOnEmptyThrows) {
  RequestScheduler sched;
  EXPECT_THROW((void)sched.pop(0.0), InternalError);
}

}  // namespace
}  // namespace flstore::serve
