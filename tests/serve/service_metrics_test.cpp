// ServiceReport aggregate metrics, with the zero-completion regression the
// telemetry plane depends on: an all-rejected (or empty) run must report
// zeros from every ratio metric — never NaN, never a SampleSet throw.
#include "serve/service_metrics.hpp"

#include <gtest/gtest.h>

namespace flstore::serve {
namespace {

ServiceRecord completed(double arrival_s, double queue_s, double comm_s,
                        std::size_t hits, std::size_t misses,
                        fed::WorkloadType type = fed::WorkloadType::kInference) {
  ServiceRecord rec;
  rec.request.type = type;
  rec.request.arrival_s = arrival_s;
  rec.start_s = arrival_s + queue_s;
  rec.queue_s = queue_s;
  rec.comm_s = comm_s;
  rec.hits = hits;
  rec.misses = misses;
  rec.cost_usd = 0.001;
  return rec;
}

ServiceRecord shed(double arrival_s) {
  ServiceRecord rec;
  rec.request.arrival_s = arrival_s;
  rec.rejected = true;
  return rec;
}

TEST(ServiceReport, AllRejectedTraceReportsZeros) {
  ServiceReport report;
  for (int i = 0; i < 5; ++i) report.records.push_back(shed(i));
  EXPECT_EQ(report.completed(), 0U);
  EXPECT_EQ(report.rejected(), 5U);
  EXPECT_DOUBLE_EQ(report.throughput_qps(), 0.0);
  EXPECT_DOUBLE_EQ(report.cost_per_1k_usd(), 0.0);
  EXPECT_DOUBLE_EQ(report.makespan_s(), 0.0);
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.latency_percentile_s(99.0), 0.0);
  EXPECT_DOUBLE_EQ(report.mean_queue_wait_s(), 0.0);
}

TEST(ServiceReport, EmptyReportReportsZeros) {
  const ServiceReport report;
  EXPECT_DOUBLE_EQ(report.throughput_qps(), 0.0);
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.latency_percentile_s(50.0), 0.0);
  EXPECT_DOUBLE_EQ(report.mean_queue_wait_s(), 0.0);
}

TEST(ServiceReport, GuardedHelpersMatchSampleSetWhenNonEmpty) {
  ServiceReport report;
  report.records.push_back(completed(0.0, 1.0, 2.0, 3, 1));
  report.records.push_back(completed(10.0, 3.0, 2.0, 1, 3));
  report.records.push_back(shed(20.0));
  EXPECT_DOUBLE_EQ(report.latency_percentile_s(50.0),
                   report.latencies().percentile(50.0));
  EXPECT_DOUBLE_EQ(report.mean_queue_wait_s(),
                   report.queue_waits().mean());
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.5);  // 4 hits / 8 accesses
}

TEST(ServiceReport, HitRateFiltersbyClass) {
  ServiceReport report;
  report.records.push_back(
      completed(0.0, 0.0, 1.0, 4, 0, fed::WorkloadType::kInference));  // P1
  report.records.push_back(
      completed(1.0, 0.0, 1.0, 0, 4, fed::WorkloadType::kClustering));  // P2
  EXPECT_DOUBLE_EQ(report.hit_rate(fed::PolicyClass::kP1), 1.0);
  EXPECT_DOUBLE_EQ(report.hit_rate(fed::PolicyClass::kP2), 0.0);
  EXPECT_DOUBLE_EQ(report.hit_rate(fed::PolicyClass::kP3), 0.0);  // no data
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.5);
}

TEST(ServiceReport, RejectedRecordsStayOutOfLatencyPools) {
  ServiceReport report;
  report.records.push_back(completed(0.0, 5.0, 1.0, 1, 0));
  report.records.push_back(shed(1.0));
  EXPECT_EQ(report.latencies().size(), 1U);
  EXPECT_EQ(report.queue_waits().size(), 1U);
  EXPECT_DOUBLE_EQ(report.mean_queue_wait_s(), 5.0);
}

}  // namespace
}  // namespace flstore::serve
