// Load generation: the streaming arrival process (determinism, O(1) state,
// population synthesis, availability windows), the weighted tenant draw's
// boundary behaviour, and the materialized path's reserve clamp.
#include "serve/load_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "fed/fl_job.hpp"

namespace flstore::serve {
namespace {

fed::FLJobConfig small_job(std::uint64_t seed) {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 24;
  cfg.clients_per_round = 6;
  cfg.rounds = 80;
  cfg.seed = seed;
  return cfg;
}

struct Jobs {
  explicit Jobs(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<fed::FLJob>(small_job(300 + std::uint64_t(i))));
    }
  }
  [[nodiscard]] std::vector<TenantMix> mix(
      std::vector<double> weights = {}) const {
    std::vector<TenantMix> out;
    for (std::size_t i = 0; i < owned.size(); ++i) {
      const double w = i < weights.size() ? weights[i] : 1.0;
      out.push_back(TenantMix{static_cast<JobId>(i), owned[i].get(), w, {}, 3});
    }
    return out;
  }
  std::vector<std::unique_ptr<fed::FLJob>> owned;
};

std::vector<ServiceRequest> drain(ArrivalStream& stream) {
  std::vector<ServiceRequest> out;
  while (auto req = stream.next()) out.push_back(std::move(*req));
  return out;
}

void expect_identical(const std::vector<ServiceRequest>& a,
                      const std::vector<ServiceRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].request.id, b[i].request.id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].request.type, b[i].request.type);
    EXPECT_EQ(a[i].request.round, b[i].request.round);
    EXPECT_EQ(a[i].request.client, b[i].request.client);
    EXPECT_EQ(a[i].request.origin, b[i].request.origin);
    EXPECT_EQ(a[i].request.device_class, b[i].request.device_class);
    EXPECT_DOUBLE_EQ(a[i].request.arrival_s, b[i].request.arrival_s);
  }
}

StreamConfig shaped_config() {
  StreamConfig cfg;
  cfg.rate.base_qps = 1.0;
  cfg.rate.diurnal_amplitude = 0.5;
  cfg.rate.diurnal_period_s = 1800.0;
  cfg.rate.surges.push_back(RateProfile::Surge{600.0, 900.0, 3.0});
  cfg.duration_s = 3600.0;
  cfg.round_interval_s = 30.0;
  cfg.seed = 17;
  cfg.population.clients = 100000;
  cfg.population.zipf_exponent = 1.0;
  cfg.population.device_classes = {
      DeviceClass{"phone", 0.7, 4096, 0.0, 0.0},
      DeviceClass{"sensor", 0.3, 1024, 0.0, 0.0},
  };
  return cfg;
}

// -------------------------------------------------------------------------
// weighted_index boundary behaviour (the draw-at-total bias fix)

TEST(WeightedIndex, PicksFirstSlotWhoseCumulativeExceedsDraw) {
  const std::vector<double> cum = {1.0, 3.0, 6.0};
  EXPECT_EQ(weighted_index(cum, 0.0), 0U);
  EXPECT_EQ(weighted_index(cum, 0.999), 0U);
  EXPECT_EQ(weighted_index(cum, 1.0), 1U);  // boundary goes to the NEXT slot
  EXPECT_EQ(weighted_index(cum, 2.999), 1U);
  EXPECT_EQ(weighted_index(cum, 3.0), 2U);
  EXPECT_EQ(weighted_index(cum, 5.999), 2U);
}

TEST(WeightedIndex, DrawAtTotalClampsToLastSlotInsteadOfFallingOut) {
  // u == total cannot occur from a half-open draw, but floating-point
  // accumulation can produce it; the legacy generator's subtract-walk let
  // that draw fall through past the end.
  const std::vector<double> cum = {1.0, 3.0, 6.0};
  EXPECT_EQ(weighted_index(cum, 6.0), 2U);
  EXPECT_EQ(weighted_index(cum, 7.5), 2U);
}

// -------------------------------------------------------------------------
// Streaming determinism and equivalence with the materialized path

TEST(ArrivalStream, BitIdenticalAcrossRunsForEqualInputs) {
  const Jobs jobs(2);
  const auto cfg = shaped_config();
  ArrivalStream a(cfg, jobs.mix({0.7, 0.3}));
  ArrivalStream b(cfg, jobs.mix({0.7, 0.3}));
  const auto ra = drain(a);
  const auto rb = drain(b);
  ASSERT_GT(ra.size(), 1000U);
  expect_identical(ra, rb);
  EXPECT_EQ(a.emitted(), b.emitted());
  EXPECT_DOUBLE_EQ(a.last_arrival_s(), b.last_arrival_s());
}

TEST(ArrivalStream, ConstantRateStreamMatchesMaterializedTrace) {
  // The legacy constant-rate, no-population config: the streamed sequence
  // must be byte-for-byte what open_loop_trace materializes.
  const Jobs jobs(3);
  OpenLoopConfig legacy;
  legacy.offered_qps = 2.0;
  legacy.duration_s = 900.0;
  legacy.round_interval_s = 30.0;
  legacy.seed = 7;
  const auto materialized = open_loop_trace(legacy, jobs.mix());

  StreamConfig cfg;
  cfg.rate.base_qps = legacy.offered_qps;
  cfg.duration_s = legacy.duration_s;
  cfg.round_interval_s = legacy.round_interval_s;
  cfg.seed = legacy.seed;
  ArrivalStream stream(cfg, jobs.mix());
  const auto streamed = drain(stream);

  ASSERT_GT(materialized.size(), 500U);
  expect_identical(materialized, streamed);
}

TEST(ArrivalStream, RealizedTenantMixTracksConfiguredWeights) {
  // Regression for the weighted-draw bias audit: over a long stream the
  // per-tenant share must pin to the configured 60/30/10 split.
  const Jobs jobs(3);
  StreamConfig cfg;
  cfg.rate.base_qps = 4.0;
  cfg.duration_s = 4.0 * 3600.0;
  cfg.round_interval_s = 60.0;
  cfg.seed = 23;
  ArrivalStream stream(cfg, jobs.mix({0.6, 0.3, 0.1}));
  std::map<JobId, double> count;
  const auto all = drain(stream);
  ASSERT_GT(all.size(), 10000U);
  for (const auto& req : all) count[req.tenant] += 1.0;
  const auto total = static_cast<double>(all.size());
  EXPECT_NEAR(count[0] / total, 0.6, 0.03);
  EXPECT_NEAR(count[1] / total, 0.3, 0.03);
  EXPECT_NEAR(count[2] / total, 0.1, 0.03);
}

// -------------------------------------------------------------------------
// O(1) state

TEST(ArrivalStream, StateIsIndependentOfDurationAndPopulationSize) {
  const Jobs jobs(2);
  auto cfg = shaped_config();
  ArrivalStream base(cfg, jobs.mix());

  auto long_cfg = cfg;
  long_cfg.duration_s = 1000.0 * 3600.0;
  ArrivalStream long_run(long_cfg, jobs.mix());
  EXPECT_EQ(base.state_bytes(), long_run.state_bytes());

  auto big_cfg = cfg;
  big_cfg.population.clients = 2'000'000;
  ArrivalStream big_pop(big_cfg, jobs.mix());
  EXPECT_EQ(base.state_bytes(), big_pop.state_bytes());

  // And the footprint stays flat as requests are drawn.
  const auto before = base.state_bytes();
  for (int i = 0; i < 5000; ++i) {
    if (!base.next().has_value()) break;
  }
  EXPECT_EQ(base.state_bytes(), before);
}

// -------------------------------------------------------------------------
// Population synthesis

TEST(ArrivalStream, OriginRanksStayWithinEachClassSpan) {
  const Jobs jobs(1);
  StreamConfig cfg;
  cfg.rate.base_qps = 3.0;
  cfg.duration_s = 3600.0;
  cfg.seed = 5;
  cfg.population.clients = 1000;
  cfg.population.zipf_exponent = 0.8;
  cfg.population.device_classes = {
      DeviceClass{"a", 0.5, 1024, 0.0, 0.0},
      DeviceClass{"b", 0.5, 2048, 0.0, 0.0},
  };
  ArrivalStream stream(cfg, jobs.mix());
  bool saw_a = false, saw_b = false;
  for (const auto& req : drain(stream)) {
    ASSERT_NE(req.request.origin, kNoClient);
    if (req.request.device_class == 0) {
      saw_a = true;
      EXPECT_GE(req.request.origin, 0);
      EXPECT_LT(req.request.origin, 500);
    } else {
      saw_b = true;
      ASSERT_EQ(req.request.device_class, 1);
      EXPECT_GE(req.request.origin, 500);
      EXPECT_LT(req.request.origin, 1000);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(ArrivalStream, AvailabilityWindowsGateIssuingClasses) {
  const Jobs jobs(1);
  StreamConfig cfg;
  cfg.rate.base_qps = 2.0;
  cfg.duration_s = 4000.0;
  cfg.seed = 11;
  cfg.population.clients = 10000;
  cfg.population.availability_period_s = 1000.0;
  cfg.population.device_classes = {
      DeviceClass{"day", 1.0, 1024, 0.0, 600.0},
      DeviceClass{"night", 1.0, 1024, 600.0, 1000.0},
  };
  ArrivalStream stream(cfg, jobs.mix());
  const auto all = drain(stream);
  ASSERT_GT(all.size(), 1000U);
  for (const auto& req : all) {
    const double pos = std::fmod(req.request.arrival_s, 1000.0);
    if (req.request.device_class == 0) {
      EXPECT_LT(pos, 600.0);
    } else {
      EXPECT_GE(pos, 600.0);
    }
  }
}

TEST(ArrivalStream, ArrivalsSuppressedWhileNoClassIsAvailable) {
  const Jobs jobs(1);
  StreamConfig cfg;
  cfg.rate.base_qps = 2.0;
  cfg.duration_s = 5000.0;
  cfg.seed = 13;
  cfg.population.clients = 1000;
  cfg.population.availability_period_s = 1000.0;
  // On duty only the first 10% of each period: the offered process itself
  // must go quiet for the other 90%.
  cfg.population.device_classes = {
      DeviceClass{"duty", 1.0, 1024, 0.0, 100.0},
  };
  ArrivalStream stream(cfg, jobs.mix());
  const auto all = drain(stream);
  ASSERT_GT(all.size(), 100U);
  for (const auto& req : all) {
    EXPECT_LT(std::fmod(req.request.arrival_s, 1000.0), 100.0);
  }
}

TEST(ArrivalStream, PopulationBeyondClientIdSpaceThrows) {
  const Jobs jobs(1);
  StreamConfig cfg;
  cfg.population.clients = std::int64_t{1} << 40;
  EXPECT_THROW((ArrivalStream(cfg, jobs.mix())), InvalidArgument);
}

// -------------------------------------------------------------------------
// Time-varying rates

TEST(RateProfile, SurgeAndDiurnalComposeAndPeakBounds) {
  RateProfile rate;
  rate.base_qps = 2.0;
  rate.diurnal_amplitude = 0.5;
  rate.diurnal_period_s = 400.0;
  rate.surges.push_back(RateProfile::Surge{100.0, 200.0, 4.0});
  EXPECT_FALSE(rate.constant());
  // Peak of the sinusoid is at period/4 = 100 s, inside the surge window.
  EXPECT_DOUBLE_EQ(rate.rate_at(100.0), 2.0 * 1.5 * 4.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(250.0), 2.0 * (1.0 + 0.5 * std::sin(
                                                  2.0 * std::numbers::pi *
                                                  250.0 / 400.0)));
  const double peak = rate.peak_qps();
  for (double t = 0.0; t < 800.0; t += 1.0) {
    EXPECT_LE(rate.rate_at(t), peak + 1e-12);
  }
}

TEST(ArrivalStream, SurgeWindowCarriesProportionallyMoreArrivals) {
  const Jobs jobs(1);
  StreamConfig cfg;
  cfg.rate.base_qps = 1.0;
  cfg.rate.surges.push_back(RateProfile::Surge{1000.0, 2000.0, 5.0});
  cfg.duration_s = 4000.0;
  cfg.seed = 29;
  ArrivalStream stream(cfg, jobs.mix());
  double in_surge = 0.0, outside = 0.0;
  for (const auto& req : drain(stream)) {
    const double t = req.request.arrival_s;
    (t >= 1000.0 && t < 2000.0 ? in_surge : outside) += 1.0;
  }
  // 1000 s at 5 qps vs 3000 s at 1 qps: realized ratio of *rates* ~5x.
  const double surge_rate = in_surge / 1000.0;
  const double calm_rate = outside / 3000.0;
  EXPECT_GT(surge_rate / calm_rate, 3.5);
  EXPECT_LT(surge_rate / calm_rate, 6.5);
}

// -------------------------------------------------------------------------
// Reserve clamp (the materialized path's overflow bugfix)

TEST(OpenLoopTrace, ReserveHintClampedAndCastSafe) {
  // Small sweeps keep the exact expected-count hint...
  EXPECT_EQ(trace_reserve_hint(2.0, 600.0),
            static_cast<std::size_t>(2.0 * 600.0 * 1.1));
  // ...huge sweeps clamp instead of reserving gigabytes...
  EXPECT_EQ(trace_reserve_hint(1e6, 1e6), std::size_t{1} << 20);
  // ...and a product beyond size_t range must not overflow the cast.
  EXPECT_EQ(trace_reserve_hint(1e30, 1e30), std::size_t{1} << 20);
  EXPECT_EQ(trace_reserve_hint(0.0, 0.0), 0U);
}

}  // namespace
}  // namespace flstore::serve
