// Real-thread hot path (ShardedStore::hot_get/hot_put/hot_evict): striped
// vs exclusive equivalence, partitioned-keyspace determinism against a
// single-threaded replay, ledger invariants under concurrent mixed traffic,
// and a stats-polling TSan regression for the shared-lock fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/hot_counters.hpp"
#include "serve/sharded_store.hpp"
#include "serve/thread_pool.hpp"
#include "sim/calibration.hpp"

namespace flstore::serve {
namespace {

using units::MB;

fed::FLJobConfig small_job() {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 24;
  cfg.clients_per_round = 6;
  cfg.rounds = 4;
  cfg.seed = 77;
  return cfg;
}

enum class OpKind : std::uint8_t { kGet, kPut, kEvict };

struct Op {
  MetadataKey key;
  OpKind kind = OpKind::kGet;
};

MetadataKey nth_key(int rank) {
  return MetadataKey::update(rank % 16, rank / 16);
}

std::vector<Op> mixed_stream(int ops, int n_keys, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> stream;
  stream.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.key = nth_key(
        static_cast<int>(rng.uniform_int(0, n_keys - 1)));
    const double r = rng.uniform();
    op.kind =
        r < 0.15 ? OpKind::kPut : r < 0.20 ? OpKind::kEvict : OpKind::kGet;
    stream.push_back(op);
  }
  return stream;
}

struct HotPlane {
  explicit HotPlane(HotPathConfig hot, int tenants = 1, int shards_each = 2)
      : cold(sim::objstore_link(), PricingCatalog::aws()),
        job(std::make_unique<fed::FLJob>(small_job())) {
    ShardedStoreConfig cfg;
    cfg.worker_threads = 0;
    cfg.hot_path = hot;
    store = std::make_unique<ShardedStore>(cold, cfg);
    for (int t = 0; t < tenants; ++t) {
      (void)store->add_tenant(*job, {}, shards_each);
    }
  }

  void prefill(JobId tenant, int n_keys) {
    for (int k = 0; k < n_keys; ++k) {
      ASSERT_TRUE(store->hot_put(tenant, nth_key(k), MB, 0.0, 0));
    }
  }

  void replay(JobId tenant, const std::vector<Op>& stream, int worker) {
    for (const auto& op : stream) {
      switch (op.kind) {
        case OpKind::kGet:
          (void)store->hot_get(tenant, op.key, 0.0, worker);
          break;
        case OpKind::kPut:
          (void)store->hot_put(tenant, op.key, MB, 0.0, worker);
          break;
        case OpKind::kEvict:
          (void)store->hot_evict(tenant, op.key, worker);
          break;
      }
    }
  }

  struct EngineTotals {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t objects = 0;
    units::Bytes bytes = 0;

    friend bool operator==(const EngineTotals&, const EngineTotals&) = default;
  };
  [[nodiscard]] EngineTotals totals() const {
    EngineTotals t;
    for (int s = 0; s < store->shard_count(); ++s) {
      const auto& engine = store->shard(s).engine();
      t.hits += engine.hits();
      t.misses += engine.misses();
      t.objects += engine.object_count();
      t.bytes += engine.cached_bytes();
    }
    return t;
  }

  ObjectStore cold;
  std::unique_ptr<fed::FLJob> job;
  std::unique_ptr<ShardedStore> store;
};

HotPathConfig hot_config(HotPathMode mode, obs::HotCounters* counters = nullptr,
                         int drain_batch = 32) {
  HotPathConfig cfg;
  cfg.mode = mode;
  cfg.counters = counters;
  cfg.drain_batch = drain_batch;
  return cfg;
}

// Single-threaded, the lock-minimal mode must agree with the exclusive
// baseline op for op: same per-op hit observations, and (after hot_sync)
// the same hit/miss ledgers, object counts, and resident bytes.
TEST(HotPath, StripedMatchesExclusiveSingleThreaded) {
  const auto stream = mixed_stream(4000, 48, 11);
  HotPlane exclusive(hot_config(HotPathMode::kExclusive));
  HotPlane striped(hot_config(HotPathMode::kStriped));
  exclusive.prefill(0, 48);
  striped.prefill(0, 48);
  for (const auto& op : stream) {
    if (op.kind == OpKind::kGet) {
      EXPECT_EQ(exclusive.store->hot_get(0, op.key, 0.0, 0),
                striped.store->hot_get(0, op.key, 0.0, 0));
    } else if (op.kind == OpKind::kPut) {
      EXPECT_EQ(exclusive.store->hot_put(0, op.key, MB, 0.0, 0),
                striped.store->hot_put(0, op.key, MB, 0.0, 0));
    } else {
      EXPECT_EQ(exclusive.store->hot_evict(0, op.key, 0),
                striped.store->hot_evict(0, op.key, 0));
    }
  }
  striped.store->hot_sync();
  EXPECT_EQ(exclusive.totals(), striped.totals());
}

// Partitioned keyspaces (tenant per worker) share no state, so a concurrent
// run must produce, per tenant, exactly the ledgers of a single-threaded
// replay of the same streams.
TEST(HotPath, PartitionedConcurrentMatchesSingleThreadedReplay) {
  constexpr int kWorkers = 4;
  constexpr int kKeys = 32;
  std::vector<std::vector<Op>> streams;
  for (int w = 0; w < kWorkers; ++w) {
    streams.push_back(mixed_stream(3000, kKeys, 100 + std::uint64_t(w)));
  }

  HotPlane concurrent(hot_config(HotPathMode::kStriped), kWorkers, 1);
  HotPlane reference(hot_config(HotPathMode::kStriped), kWorkers, 1);
  for (int t = 0; t < kWorkers; ++t) {
    concurrent.prefill(t, kKeys);
    reference.prefill(t, kKeys);
  }

  ThreadPool::run_replicated(kWorkers, [&](int worker) {
    concurrent.replay(worker, streams[static_cast<std::size_t>(worker)],
                      worker);
  });
  concurrent.store->hot_sync();
  for (int t = 0; t < kWorkers; ++t) {
    reference.replay(t, streams[static_cast<std::size_t>(t)], 0);
  }
  reference.store->hot_sync();

  for (int s = 0; s < concurrent.store->shard_count(); ++s) {
    const auto& a = concurrent.store->shard(s).engine();
    const auto& b = reference.store->shard(s).engine();
    EXPECT_EQ(a.hits(), b.hits()) << "shard " << s;
    EXPECT_EQ(a.misses(), b.misses()) << "shard " << s;
    EXPECT_EQ(a.object_count(), b.object_count()) << "shard " << s;
    EXPECT_EQ(a.cached_bytes(), b.cached_bytes()) << "shard " << s;
  }
}

// Contended striped traffic: after the workers join and the stripes drain,
// (a) every issued get is booked as exactly one hit or miss, (b) per-class
// occupancy sums to the engine totals, (c) the hot counters agree with the
// number of ops issued.
TEST(HotPath, ConcurrentGetPutEvictInvariants) {
  constexpr int kWorkers = 4;
  constexpr int kKeys = 64;
  constexpr int kOps = 5000;
  obs::HotCounters counters;
  HotPlane plane(hot_config(HotPathMode::kStriped, &counters,
                            /*drain_batch=*/16),
                 1, 2);
  plane.prefill(0, kKeys);
  counters.reset();

  std::vector<std::vector<Op>> streams;
  for (int w = 0; w < kWorkers; ++w) {
    streams.push_back(mixed_stream(kOps, kKeys, 500 + std::uint64_t(w)));
  }
  ThreadPool::run_replicated(kWorkers, [&](int worker) {
    plane.replay(0, streams[static_cast<std::size_t>(worker)], worker);
  });
  plane.store->hot_sync();

  std::uint64_t issued_gets = 0;
  for (const auto& stream : streams) {
    for (const auto& op : stream) issued_gets += op.kind == OpKind::kGet;
  }
  EXPECT_EQ(counters.total(obs::HotCounters::kGets), issued_gets);
  EXPECT_EQ(counters.total(obs::HotCounters::kHits) +
                counters.total(obs::HotCounters::kMisses),
            issued_gets);

  const auto totals = plane.totals();
  EXPECT_EQ(totals.hits + totals.misses, issued_gets);
  EXPECT_EQ(totals.hits, counters.total(obs::HotCounters::kHits));
  EXPECT_EQ(totals.misses, counters.total(obs::HotCounters::kMisses));

  // Per-class ledgers stay consistent with the engine totals.
  for (int s = 0; s < plane.store->shard_count(); ++s) {
    const auto& engine = plane.store->shard(s).engine();
    units::Bytes class_bytes = 0;
    std::size_t class_objects = 0;
    for (std::size_t p = 0; p < core::CacheEngine::kPartitions; ++p) {
      class_bytes += engine.class_stats(p).bytes;
      class_objects += engine.class_stats(p).objects;
    }
    EXPECT_EQ(class_bytes, engine.cached_bytes());
    EXPECT_EQ(class_objects, engine.object_count());
  }

  // Every drained batch was counted, and nothing is left pending.
  EXPECT_EQ(counters.total(obs::HotCounters::kDrainedAccesses), issued_gets);
}

// TSan regression: polling the plane's aggregate statistics while hot
// traffic runs must be race-free (the pollers take the shard writer lock;
// the readers hold it shared).
TEST(HotPath, StatsPollingDuringHotTrafficIsDataRaceFree) {
  constexpr int kWorkers = 2;
  constexpr int kKeys = 32;
  HotPlane plane(hot_config(HotPathMode::kStriped), 1, 2);
  plane.prefill(0, kKeys);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)plane.store->tenant_class_stats(0);
      (void)plane.store->infrastructure_cost(60.0);
      (void)plane.store->dirty_window_stats(0.0);
    }
  });
  std::vector<std::vector<Op>> streams;
  for (int w = 0; w < kWorkers; ++w) {
    streams.push_back(mixed_stream(8000, kKeys, 900 + std::uint64_t(w)));
  }
  ThreadPool::run_replicated(kWorkers, [&](int worker) {
    plane.replay(0, streams[static_cast<std::size_t>(worker)], worker);
  });
  done.store(true, std::memory_order_release);
  poller.join();
  plane.store->hot_sync();
  const auto totals = plane.totals();
  EXPECT_GT(totals.hits, 0U);
}

// A tiny drain batch forces many mid-run handoffs; the ledger must still be
// exact and hot_sync must leave nothing pending (drained == issued).
TEST(HotPath, HotSyncDrainsExactly) {
  obs::HotCounters counters;
  HotPlane plane(hot_config(HotPathMode::kStriped, &counters,
                            /*drain_batch=*/4),
                 1, 1);
  plane.prefill(0, 16);
  counters.reset();
  const auto stream = mixed_stream(1000, 16, 42);
  plane.replay(0, stream, 0);
  plane.store->hot_sync();
  EXPECT_EQ(counters.total(obs::HotCounters::kDrainedAccesses),
            counters.total(obs::HotCounters::kGets));
  const auto totals = plane.totals();
  EXPECT_EQ(totals.hits + totals.misses,
            counters.total(obs::HotCounters::kGets));
}

}  // namespace
}  // namespace flstore::serve
