// ShardedStore: routing, multi-tenant replay determinism under the worker
// pool, queued serving (throughput mode), admission control, closed loop.
#include "serve/sharded_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "sim/calibration.hpp"

namespace flstore::serve {
namespace {

fed::FLJobConfig small_job(std::uint64_t seed) {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 24;
  cfg.clients_per_round = 6;
  cfg.rounds = 80;
  cfg.seed = seed;
  return cfg;
}

struct Plane {
  explicit Plane(ShardedStoreConfig cfg, int tenants = 2, int shards_each = 1)
      : cold(sim::objstore_link(), PricingCatalog::aws()) {
    for (int i = 0; i < tenants; ++i) {
      jobs.push_back(
          std::make_unique<fed::FLJob>(small_job(100 + std::uint64_t(i))));
    }
    store = std::make_unique<ShardedStore>(cold, cfg);
    for (auto& job : jobs) {
      (void)store->add_tenant(*job, {}, shards_each);
    }
  }

  [[nodiscard]] std::vector<TenantMix> mix() const {
    std::vector<TenantMix> out;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out.push_back(TenantMix{static_cast<JobId>(i), jobs[i].get(), 1.0, {}, 3});
    }
    return out;
  }

  ObjectStore cold;
  std::vector<std::unique_ptr<fed::FLJob>> jobs;
  std::unique_ptr<ShardedStore> store;
};

OpenLoopConfig open_loop(double qps, double duration) {
  OpenLoopConfig cfg;
  cfg.offered_qps = qps;
  cfg.duration_s = duration;
  cfg.round_interval_s = 30.0;
  cfg.seed = 7;
  return cfg;
}

ShardedStoreConfig plane_config(int threads) {
  ShardedStoreConfig cfg;
  cfg.worker_threads = threads;
  return cfg;
}

void expect_identical(const ServiceReport& a, const ServiceReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.request.id, rb.request.id);
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.shard, rb.shard);
    EXPECT_EQ(ra.rejected, rb.rejected);
    EXPECT_EQ(ra.hits, rb.hits);
    EXPECT_EQ(ra.misses, rb.misses);
    EXPECT_DOUBLE_EQ(ra.start_s, rb.start_s);
    EXPECT_DOUBLE_EQ(ra.queue_s, rb.queue_s);
    EXPECT_DOUBLE_EQ(ra.comm_s, rb.comm_s);
    EXPECT_DOUBLE_EQ(ra.comp_s, rb.comp_s);
    EXPECT_DOUBLE_EQ(ra.cost_usd, rb.cost_usd);
  }
}

// Acceptance criterion: a multi-tenant replay on 4 worker threads is
// bit-identical to a single-threaded replay of the same trace.
TEST(ShardedStore, ReplayDeterministicAcrossPoolSizes) {
  Plane reference(plane_config(/*threads=*/0), /*tenants=*/3);
  Plane pooled(plane_config(/*threads=*/4), /*tenants=*/3);
  const auto trace = open_loop_trace(open_loop(0.4, 600.0), reference.mix());
  ASSERT_GT(trace.size(), 100U);

  const auto a = reference.store->replay(trace, 30.0);
  const auto b = pooled.store->replay(trace, 30.0);
  ASSERT_EQ(a.records.size(), trace.size());
  expect_identical(a, b);
}

// The queued modes are deterministic too: scheduling decisions depend only
// on simulated time, never on pool interleaving.
TEST(ShardedStore, QueuedServingDeterministicAcrossPoolSizes) {
  Plane reference(plane_config(0), /*tenants=*/2, /*shards_each=*/2);
  Plane pooled(plane_config(4), /*tenants=*/2, /*shards_each=*/2);
  const auto trace = open_loop_trace(open_loop(0.5, 400.0), reference.mix());
  const auto a = reference.store->serve_open_loop(trace, 30.0);
  const auto b = pooled.store->serve_open_loop(trace, 30.0);
  expect_identical(a, b);
}

// A single-shard single-tenant replay matches driving the facade directly —
// the serving plane adds no hidden cost or latency.
// The streaming entry point is a pure re-plumbing of the materialized one:
// for the legacy constant-rate, no-population config the two reports must
// be bit-identical, record for record.
TEST(ShardedStore, StreamedServingMatchesMaterializedOpenLoop) {
  Plane materialized(plane_config(0), /*tenants=*/2, /*shards_each=*/2);
  Plane streamed(plane_config(0), /*tenants=*/2, /*shards_each=*/2);

  const auto legacy = open_loop(0.5, 400.0);
  const auto trace = open_loop_trace(legacy, materialized.mix());
  ASSERT_GT(trace.size(), 100U);
  const auto a = materialized.store->serve_open_loop(trace, 30.0);

  StreamConfig cfg;
  cfg.rate.base_qps = legacy.offered_qps;
  cfg.duration_s = legacy.duration_s;
  cfg.round_interval_s = legacy.round_interval_s;
  cfg.seed = legacy.seed;
  const auto b = streamed.store->serve_open_loop_stream(cfg, streamed.mix());

  ASSERT_EQ(a.records.size(), trace.size());
  expect_identical(a, b);
}

TEST(ShardedStore, StreamedServingDeterministicAcrossPoolSizes) {
  Plane reference(plane_config(0), /*tenants=*/3, /*shards_each=*/2);
  Plane pooled(plane_config(4), /*tenants=*/3, /*shards_each=*/2);
  StreamConfig cfg;
  cfg.rate.base_qps = 0.8;
  cfg.rate.diurnal_amplitude = 0.4;
  cfg.rate.diurnal_period_s = 600.0;
  cfg.rate.surges.push_back(RateProfile::Surge{100.0, 200.0, 3.0});
  cfg.duration_s = 900.0;
  cfg.round_interval_s = 30.0;
  cfg.seed = 31;
  cfg.population.clients = 50000;
  const auto a = reference.store->serve_open_loop_stream(cfg, reference.mix());
  const auto b = pooled.store->serve_open_loop_stream(cfg, pooled.mix());
  ASSERT_GT(a.records.size(), 100U);
  expect_identical(a, b);
}

TEST(ShardedStore, StreamedServingRejectsUnknownOrDuplicateTenants) {
  Plane plane(plane_config(0), /*tenants=*/2);
  StreamConfig cfg;
  cfg.rate.base_qps = 0.5;
  cfg.duration_s = 60.0;

  auto unknown = plane.mix();
  unknown[1].tenant = 99;
  EXPECT_THROW((void)plane.store->serve_open_loop_stream(cfg, unknown),
               InvalidArgument);

  auto duplicate = plane.mix();
  duplicate[1].tenant = duplicate[0].tenant;
  EXPECT_THROW((void)plane.store->serve_open_loop_stream(cfg, duplicate),
               InvalidArgument);
}

TEST(ShardedStore, SingleShardReplayMatchesDirectFacade) {
  auto cfg = plane_config(2);
  // The bare-facade reference below has no interceptor, so run the plane
  // with the direct cold path too.
  cfg.coalesce_cold_fetches = false;
  Plane plane(cfg, /*tenants=*/1);
  const auto trace = open_loop_trace(open_loop(0.3, 400.0), plane.mix());
  const auto report = plane.store->replay(trace, 30.0);

  // Reference: a bare FLStore over a fresh cold store, same namespace,
  // same interleaving of ingests and serves.
  ObjectStore cold2(sim::objstore_link(), PricingCatalog::aws());
  fed::FLJob job2(small_job(100));
  core::FLStoreConfig store_cfg;
  store_cfg.cold_namespace = "t0/";
  core::FLStore direct(store_cfg, job2, cold2);
  std::size_t next = 0;
  const auto max_round = static_cast<RoundId>(400.0 / 30.0);
  ASSERT_EQ(report.records.size(), trace.size());
  const auto serve_and_compare = [&](double upto) {
    while (next < trace.size() && trace[next].request.arrival_s < upto) {
      const auto& req = trace[next].request;
      const auto res = direct.serve(req, req.arrival_s);
      const auto& rec = report.records[next];
      EXPECT_EQ(rec.hits, res.hits);
      EXPECT_EQ(rec.misses, res.misses);
      EXPECT_DOUBLE_EQ(rec.comm_s, res.comm_s);
      EXPECT_DOUBLE_EQ(rec.comp_s, res.comp_s);
      EXPECT_DOUBLE_EQ(rec.cost_usd, res.cost_usd);
      ++next;
    }
  };
  for (RoundId r = 0; r <= max_round; ++r) {
    const double t = 30.0 * r;
    serve_and_compare(t);
    if (r <= job2.latest_round()) direct.ingest_round(job2.make_round(r), t);
  }
  serve_and_compare(401.0);  // requests after the final ingest
  EXPECT_EQ(next, trace.size());
}

TEST(ShardedStore, RoutingPoliciesSpreadOrPinTraffic) {
  ShardedStoreConfig cfg;
  cfg.routing = Routing::kClassAffinity;
  Plane plane(cfg, /*tenants=*/1, /*shards_each=*/4);
  fed::NonTrainingRequest p1;
  p1.type = fed::WorkloadType::kInference;
  fed::NonTrainingRequest p2;
  p2.type = fed::WorkloadType::kClustering;
  const auto s1 = plane.store->shard_for({0, p1});
  const auto s2 = plane.store->shard_for({0, p2});
  EXPECT_NE(s1, s2);  // different classes, different shards
  p2.id = 999;        // class affinity ignores the id
  EXPECT_EQ(plane.store->shard_for({0, p2}), s2);
}

TEST(ShardedStore, QueueingKicksInWhenOfferedLoadExceedsCapacity) {
  // One shard, heavy P2 analytics at 1 QPS: service times of seconds per
  // request mean the queue must grow and latency must include waiting.
  ShardedStoreConfig cfg;
  cfg.worker_threads = 2;
  Plane plane(cfg, /*tenants=*/1);
  const auto trace = open_loop_trace(open_loop(1.0, 300.0), plane.mix());
  const auto report = plane.store->serve_open_loop(trace, 30.0);
  EXPECT_GT(report.queue_waits().percentile(95.0), 0.0);
  // Sharding the same tenant 4 ways at the same offered load cuts the tail.
  ShardedStoreConfig cfg4;
  cfg4.worker_threads = 2;
  cfg4.routing = Routing::kClassAffinity;
  Plane plane4(cfg4, /*tenants=*/1, /*shards_each=*/4);
  const auto report4 = plane4.store->serve_open_loop(trace, 30.0);
  EXPECT_LT(report4.latencies().percentile(95.0),
            report.latencies().percentile(95.0));
  EXPECT_GE(report4.throughput_qps(), report.throughput_qps());
}

TEST(ShardedStore, AdmissionControlShedsLoad) {
  ShardedStoreConfig cfg;
  cfg.scheduler.class_queue_limit = 2;
  Plane plane(cfg, /*tenants=*/1);
  const auto trace = open_loop_trace(open_loop(2.0, 200.0), plane.mix());
  const auto report = plane.store->serve_open_loop(trace, 30.0);
  EXPECT_GT(report.rejected(), 0U);
  EXPECT_EQ(report.rejected() + report.completed(), trace.size());
}

TEST(ShardedStore, ClosedLoopBoundsConcurrencyPerTenant) {
  ShardedStoreConfig cfg;
  Plane plane(cfg, /*tenants=*/1);
  ClosedLoopConfig closed;
  closed.users_per_tenant = 2;
  closed.think_s = 1.0;
  closed.duration_s = 300.0;
  closed.round_interval_s = 30.0;
  const auto report = plane.store->serve_closed_loop(closed, plane.mix());
  ASSERT_GT(report.completed(), 10U);
  // At most `users` requests are ever in flight: sweep the records and
  // count overlapping [arrival, completion] intervals.
  for (const auto& r : report.records) {
    int overlapping = 0;
    for (const auto& o : report.records) {
      if (o.request.arrival_s <= r.start_s && o.completion_s() > r.start_s) {
        ++overlapping;
      }
    }
    EXPECT_LE(overlapping, closed.users_per_tenant);
  }
}

TEST(ShardedStore, ClosedLoopSurvivesAdmissionRejections) {
  // Shed users must re-issue after a think interval, not vanish: with a
  // 1-deep class queue the run still produces traffic through the whole
  // duration instead of decaying to zero live users.
  ShardedStoreConfig cfg;
  cfg.scheduler.class_queue_limit = 1;
  Plane plane(cfg, /*tenants=*/1);
  ClosedLoopConfig closed;
  closed.users_per_tenant = 6;
  closed.think_s = 0.5;
  closed.duration_s = 300.0;
  closed.round_interval_s = 30.0;
  const auto report = plane.store->serve_closed_loop(closed, plane.mix());
  EXPECT_GT(report.rejected(), 0U);
  double last_arrival = 0.0;
  for (const auto& r : report.records) {
    last_arrival = std::max(last_arrival, r.request.arrival_s);
  }
  EXPECT_GT(last_arrival, 0.8 * closed.duration_s);
}

TEST(ShardedStore, CoalescerStatsArePerRunAndWindowsDontLeak) {
  ShardedStoreConfig cfg;
  cfg.routing = Routing::kHash;
  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  fed::FLJob job(small_job(100));
  ShardedStore store(cold, cfg);
  core::FLStoreConfig store_cfg;
  store_cfg.policy.mode = core::PolicyMode::kLru;
  (void)store.add_tenant(job, store_cfg, 4);
  const std::vector<TenantMix> mix = {TenantMix{0, &job, 1.0, {}, 3}};
  const auto trace = open_loop_trace(open_loop(0.5, 300.0), mix);
  const auto first = store.replay(trace, 30.0);
  EXPECT_GT(first.coalescer.leads, 0U);
  // The second run restarts virtual time near 0; stale windows from the
  // first run must not be joinable, and its report must cover it alone.
  // (Request ids must stay unique per FLStore lifetime — the tracker
  // enforces it — so the rerun offsets them.)
  auto trace2 = trace;
  for (auto& r : trace2) r.request.id += 1'000'000;
  const auto second = store.replay(trace2, 30.0);
  const auto cumulative = store.coalescer_stats();
  EXPECT_EQ(cumulative.leads, first.coalescer.leads + second.coalescer.leads);
  EXPECT_EQ(cumulative.joins, first.coalescer.joins + second.coalescer.joins);
}

TEST(ShardedStore, UnknownTenantThrows) {
  Plane plane(plane_config(0), 1);
  fed::NonTrainingRequest req;
  req.type = fed::WorkloadType::kInference;
  EXPECT_THROW((void)plane.store->serve({5, req}, 0.0), InvalidArgument);
}

// Per-class cache budgets plumb through add_tenant to every shard, bound
// each partition's resident bytes, and show up in the tenant-level ledger.
TEST(ShardedStore, ClassPartitionsPlumbThroughAndStayBounded) {
  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  fed::FLJob job(small_job(100));
  ShardedStore store(cold, plane_config(0));
  core::FLStoreConfig store_cfg;
  const auto p2 = fed::class_index(fed::PolicyClass::kP2);
  // Two updates' worth for P2: round ingests (6 updates each) must evict
  // within the P2 partition from the first round on.
  store_cfg.class_capacity[p2] = 2 * job.model().object_bytes;
  const auto tenant = store.add_tenant(job, store_cfg, /*cache_shards=*/2);

  std::vector<ServiceRequest> trace;
  const auto mixes = std::vector<TenantMix>{{tenant, &job, 0.6, {}, 3}};
  trace = open_loop_trace(open_loop(0.3, 300.0), mixes);
  (void)store.replay(trace, 30.0);

  const auto stats = store.tenant_class_stats(tenant);
  // Each of the 2 shards is bounded separately.
  EXPECT_LE(stats[p2].bytes, 2 * store_cfg.class_capacity[p2]);
  EXPECT_EQ(stats[p2].budget, store_cfg.class_capacity[p2]);
  EXPECT_GT(stats[p2].hits + stats[p2].misses, 0U);

  // Rebalancing from the observed ledger: budgets sum to the target, every
  // class keeps its floor, and the shards adopt them.
  const auto total = 4 * job.model().object_bytes;
  const auto floor = job.model().object_bytes / 4;
  const auto budgets = store.rebalance_tenant_partitions(tenant, total, floor);
  units::Bytes sum = 0;
  for (const auto b : budgets) {
    EXPECT_GE(b, floor);
    sum += b;
  }
  EXPECT_EQ(sum, total);
  const auto after = store.tenant_class_stats(tenant);
  for (std::size_t c = 0; c < fed::kPolicyClassCount; ++c) {
    EXPECT_EQ(after[c].budget, budgets[c]);
    EXPECT_LE(after[c].bytes, 2 * budgets[c]);
  }
}

// The telemetry plane is pure bookkeeping: with the tracer, metrics, and
// SLO monitor all live, per-request results stay bit-identical to the
// uninstrumented plane — across pool sizes, like every other mode.
TEST(ShardedStore, TelemetryIsPureBookkeeping) {
  Plane plain(plane_config(0), /*tenants=*/2, /*shards_each=*/2);
  obs::Telemetry telemetry;
  auto cfg = plane_config(4);
  cfg.telemetry = &telemetry;
  Plane traced(cfg, /*tenants=*/2, /*shards_each=*/2);
  const auto trace = open_loop_trace(open_loop(0.5, 400.0), plain.mix());
  const auto a = plain.store->serve_open_loop(trace, 30.0);
  const auto b = traced.store->serve_open_loop(trace, 30.0);
  expect_identical(a, b);

  // And the books balance: request counters sum to the completed count,
  // the per-class latency histograms hold every completed request, and the
  // run published its SLO/burn-rate gauges.
  std::uint64_t histogrammed = 0;
  for (const auto c : {fed::PolicyClass::kP1, fed::PolicyClass::kP2,
                       fed::PolicyClass::kP3, fed::PolicyClass::kP4}) {
    histogrammed += telemetry.metrics
                        .histogram("serve_request_latency_s",
                                   {{obs::kLabelClass, fed::to_string(c)}})
                        .count();
  }
  EXPECT_EQ(histogrammed, b.completed());
  EXPECT_GT(telemetry.metrics.cardinality("slo_burn_rate"), 0U);
  // Every sampled request opened a root span.
  std::size_t roots = 0;
  for (const auto& span : telemetry.tracer.spans()) {
    if (span.name == "request") ++roots;
  }
  EXPECT_EQ(roots, b.completed());
}

// Regression for two races the thread-safety annotation pass surfaced:
// dirty_window_stats() and infrastructure_cost() used to read shard state
// without taking the shard mutex, so polling them while a run was in
// flight on the pool raced with mid-ingest FlushScheduler/FunctionRuntime
// updates. Both now lock each shard; under TSan this test fails on the old
// code and is clean on the fixed one. (The concurrent values themselves are
// mid-run samples — only their data-race-freedom is asserted.)
TEST(ShardedStore, StatsPollingDuringRunIsDataRaceFree) {
  auto cfg = plane_config(/*threads=*/4);
  backend::FlushPolicy flush;
  flush.max_dirty_bytes = units::MB;  // keep the flush ledger busy mid-run
  cfg.cold_flush = flush;
  Plane plane(cfg, /*tenants=*/3);
  const auto trace = open_loop_trace(open_loop(0.5, 400.0), plane.mix());

  std::atomic<bool> done{false};
  ServiceReport report;
  std::thread runner([&] {
    report = plane.store->replay(trace, 30.0);
    done.store(true, std::memory_order_release);
  });
  double sink = 0.0;
  std::uint64_t flushes = 0;
  while (!done.load(std::memory_order_acquire)) {
    sink += plane.store->infrastructure_cost(3600.0);
    flushes += plane.store->dirty_window_stats(400.0).flushes;
    std::this_thread::yield();
  }
  runner.join();

  EXPECT_EQ(report.records.size(), trace.size());
  // Quiescent-plane reads still work after the run and see real state.
  EXPECT_GT(plane.store->infrastructure_cost(3600.0), 0.0);
  (void)sink;
  (void)flushes;
}

// --- Control-plane seams ---------------------------------------------------

// Per-class scheduler ledgers: admissions + rejections partition the trace,
// and the queued run exports them on the report (replay leaves them zero).
TEST(ShardedStore, SchedulerClassLedgersPartitionTheTrace) {
  ShardedStoreConfig cfg;
  cfg.scheduler.class_queue_limit = 2;
  Plane plane(cfg, /*tenants=*/2);
  const auto trace = open_loop_trace(open_loop(2.0, 200.0), plane.mix());
  const auto report = plane.store->serve_open_loop(trace, 30.0);
  ASSERT_GT(report.rejected(), 0U);
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::size_t peak = 0;
  for (const auto& cls : report.scheduler) {
    admitted += cls.admitted;
    rejected += cls.rejected;
    peak = std::max(peak, cls.peak_queued);
  }
  EXPECT_EQ(admitted + rejected, trace.size());
  EXPECT_EQ(rejected, report.rejected());
  EXPECT_GT(peak, 0U);
  EXPECT_LE(peak, cfg.scheduler.class_queue_limit);

  // Replay bypasses the schedulers entirely: a fresh plane's ledger stays
  // untouched by a zero-queueing run.
  Plane fresh(cfg, /*tenants=*/2);
  const auto replayed = fresh.store->replay(trace, 30.0);
  for (const auto& cls : replayed.scheduler) {
    EXPECT_EQ(cls.admitted + cls.rejected + cls.peak_queued, 0U);
  }
}

// The satellite gauges: queue-depth peak and admission rejects per class
// land in the metrics registry after a queued run.
TEST(ShardedStore, SchedulerGaugesReachTheRegistry) {
  obs::Telemetry telemetry;
  ShardedStoreConfig cfg;
  cfg.scheduler.class_queue_limit = 2;
  cfg.telemetry = &telemetry;
  Plane plane(cfg, /*tenants=*/1);
  const auto trace = open_loop_trace(open_loop(2.0, 200.0), plane.mix());
  const auto report = plane.store->serve_open_loop(trace, 30.0);
  double gauge_rejects = 0.0;
  double gauge_peak = 0.0;
  for (const auto c : {fed::PolicyClass::kP1, fed::PolicyClass::kP2,
                       fed::PolicyClass::kP3, fed::PolicyClass::kP4}) {
    gauge_rejects += telemetry.metrics
                         .gauge("sched_admission_rejects",
                                {{obs::kLabelClass, fed::to_string(c)}})
                         .value();
    gauge_peak = std::max(
        gauge_peak, telemetry.metrics
                        .gauge("sched_queue_depth_peak",
                               {{obs::kLabelClass, fed::to_string(c)}})
                        .value());
  }
  EXPECT_DOUBLE_EQ(gauge_rejects, static_cast<double>(report.rejected()));
  EXPECT_GT(gauge_peak, 0.0);
}

// Live scale-out: newcomers are warmed from the primary's resident set,
// keep-alive cost grows with the fleet, and the tenant's routing spreads
// over the new width on the next run.
TEST(ShardedStore, ScaleOutWarmsNewShardsAndBillsThem) {
  ShardedStoreConfig cfg;
  cfg.routing = Routing::kHash;
  Plane plane(cfg, /*tenants=*/1, /*shards_each=*/1);
  const auto trace = open_loop_trace(open_loop(0.5, 200.0), plane.mix());
  (void)plane.store->serve_open_loop(trace, 30.0);
  const auto cost1 = plane.store->infrastructure_cost(3600.0);
  ASSERT_EQ(plane.store->tenant_shard_count(0), 1);

  EXPECT_EQ(plane.store->set_tenant_shards(0, 3, 200.0), 3);
  EXPECT_EQ(plane.store->tenant_shard_count(0), 3);
  EXPECT_EQ(plane.store->active_shard_count(), 3);
  EXPECT_GT(plane.store->infrastructure_cost(3600.0), cost1);
  // Newcomers hold warm copies of the primary's residents.
  const auto& primary = plane.store->shard(0);
  ASSERT_GT(primary.engine().object_count(), 0U);
  for (int s = 1; s < 3; ++s) {
    EXPECT_GT(plane.store->shard(s).engine().object_count(), 0U);
  }
}

// Live scale-in: victims' residents re-home onto survivors, the retired
// slot stops billing, and scale-out after scale-in reuses the slot instead
// of growing the global shard table.
TEST(ShardedStore, ScaleInRehomesAndRetiredSlotsAreReused) {
  ShardedStoreConfig cfg;
  cfg.routing = Routing::kHash;
  Plane plane(cfg, /*tenants=*/1, /*shards_each=*/3);
  const auto trace = open_loop_trace(open_loop(0.5, 200.0), plane.mix());
  (void)plane.store->serve_open_loop(trace, 30.0);
  const auto cost3 = plane.store->infrastructure_cost(3600.0);

  ASSERT_GT(plane.store->shard(0).engine().object_count(), 0U);

  EXPECT_EQ(plane.store->set_tenant_shards(0, 1, 200.0), 1);
  EXPECT_EQ(plane.store->active_shard_count(), 1);
  EXPECT_LT(plane.store->infrastructure_cost(3600.0), cost3);
  // The survivor still holds the warm set; the retired shards hold nothing.
  EXPECT_GT(plane.store->shard(0).engine().object_count(), 0U);
  EXPECT_EQ(plane.store->shard(1).engine().object_count(), 0U);
  EXPECT_EQ(plane.store->shard(2).engine().object_count(), 0U);

  // Growing again reuses the retired slots: the global table stays at 3,
  // and the reactivated slot (the most recently retired: shard 1) serves
  // again, warmed from the primary.
  EXPECT_EQ(plane.store->set_tenant_shards(0, 2, 210.0), 2);
  EXPECT_EQ(plane.store->shard_count(), 3);
  EXPECT_EQ(plane.store->active_shard_count(), 2);
  EXPECT_GT(plane.store->shard(1).engine().object_count(), 0U);
}

// The plane keeps serving correctly across a scale cycle: every request
// still completes or is shed, and the second window's results are sane.
TEST(ShardedStore, ServingContinuesAcrossScaleCycle) {
  ShardedStoreConfig cfg;
  cfg.routing = Routing::kHash;
  Plane plane(cfg, /*tenants=*/1, /*shards_each=*/1);
  const auto trace = open_loop_trace(open_loop(0.5, 400.0), plane.mix());
  std::vector<ServiceRequest> first_half;
  std::vector<ServiceRequest> second_half;
  for (const auto& r : trace) {
    (r.request.arrival_s < 200.0 ? first_half : second_half).push_back(r);
  }
  const auto a =
      plane.store->serve_open_loop_window(first_half, 30.0, 0.0, 200.0);
  EXPECT_EQ(a.completed() + a.rejected(), first_half.size());
  (void)plane.store->set_tenant_shards(0, 3, 200.0);
  const auto b =
      plane.store->serve_open_loop_window(second_half, 30.0, 200.0, 400.0);
  EXPECT_EQ(b.completed() + b.rejected(), second_half.size());
  std::size_t shards_used = 0;
  std::array<bool, 8> seen{};
  for (const auto& r : b.records) {
    if (!seen[static_cast<std::size_t>(r.shard)]) {
      seen[static_cast<std::size_t>(r.shard)] = true;
      ++shards_used;
    }
  }
  EXPECT_GT(shards_used, 1U);  // hash routing spread over the new width
}

// Windowed serving composes: the four windows serve the whole trace exactly
// once, and — the first_round contract — no window re-ingests a round the
// previous horizon already delivered, so the cold tier sees the same backup
// stream as the unwindowed run.
TEST(ShardedStore, WindowedServingNeverReingestsRounds) {
  Plane whole(plane_config(0), /*tenants=*/2);
  Plane windowed(plane_config(0), /*tenants=*/2);
  const auto trace = open_loop_trace(open_loop(0.2, 400.0), whole.mix());
  (void)whole.store->serve_open_loop(trace, 30.0);
  const auto whole_puts = whole.cold.put_count();
  ASSERT_GT(whole_puts, 0U);

  std::size_t served = 0;
  for (int k = 0; k < 4; ++k) {
    const double start = 100.0 * k;
    const double end = 100.0 * (k + 1);
    std::vector<ServiceRequest> window;
    for (const auto& r : trace) {
      if (r.request.arrival_s >= start && r.request.arrival_s < end) {
        window.push_back(r);
      }
    }
    const auto part =
        windowed.store->serve_open_loop_window(window, 30.0, start, end);
    served += part.records.size();
    EXPECT_EQ(part.completed() + part.rejected(), window.size());
  }
  EXPECT_EQ(served, trace.size());
  // Round ingest (and its cold backup) happened exactly once per round.
  // The windowed horizon reaches 400 s while the unwindowed horizon stops
  // at the last arrival, so the windowed run may ingest at most the last
  // partial round extra — never fewer, never duplicates.
  EXPECT_GE(windowed.cold.put_count(), whole_puts);
  EXPECT_LE(windowed.cold.put_count(),
            whole_puts + whole_puts / 4);  // slack for the final round
}

}  // namespace
}  // namespace flstore::serve
