// §5.5: overhead of FLStore's control-plane components, measured with
// google-benchmark on the real data structures.
//
// Paper numbers: Request Tracker < 0.19 MB and Cache Engine 0.6 MB at 1000
// concurrent requests; 20.3 MB / 63.2 MB at 100000; retrieve/use/remove all
// under one millisecond.
#include <benchmark/benchmark.h>

#include "cloud/pricing.hpp"
#include "core/cache_engine.hpp"
#include "core/request_tracker.hpp"

namespace flstore::core {
namespace {

void BM_RequestTrackerLifecycle(benchmark::State& state) {
  const auto concurrent = static_cast<std::size_t>(state.range(0));
  RequestTracker tracker;
  for (std::size_t i = 0; i < concurrent; ++i) {
    tracker.begin(static_cast<RequestId>(i + 1), 0.0);
    tracker.add_function(static_cast<RequestId>(i + 1),
                         static_cast<FunctionId>(i % 8));
  }
  // §5.5's footprint: the dictionary at `concurrent` in-flight requests.
  state.counters["resident_MB"] =
      static_cast<double>(tracker.bookkeeping_bytes()) / 1e6;

  RequestId next = concurrent + 1;
  std::size_t since_gc = 0;
  for (auto _ : state) {
    tracker.begin(next, 1.0);
    tracker.add_function(next, 3);
    tracker.finish(next, 2.0);
    benchmark::DoNotOptimize(tracker.is_done(next));
    ++next;
    if (++since_gc == 8192) {  // keep the table at its steady-state size
      state.PauseTiming();
      (void)tracker.garbage_collect(/*now=*/1e12, /*horizon_s=*/0.0);
      since_gc = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_RequestTrackerLifecycle)->Arg(1000)->Arg(100000);

void BM_RequestTrackerLookup(benchmark::State& state) {
  RequestTracker tracker;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    tracker.begin(static_cast<RequestId>(i + 1), 0.0);
  }
  RequestId probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.get(probe));
    probe = probe % n + 1;
  }
}
BENCHMARK(BM_RequestTrackerLookup)->Arg(1000)->Arg(100000);

struct EngineHarness {
  EngineHarness()
      : runtime(FunctionRuntime::Config{}, PricingCatalog::aws()),
        pool(ServerlessCachePool::Config{10 * units::GB, 1, 0.5, 0}, runtime),
        engine(CacheEngine::Config{}, pool) {}
  FunctionRuntime runtime;
  ServerlessCachePool pool;
  CacheEngine engine;
};

void BM_CacheEngineLookup(benchmark::State& state) {
  EngineHarness h;
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto blob = std::make_shared<const Blob>(Blob{1});
  for (std::int32_t i = 0; i < n; ++i) {
    h.engine.cache_object(MetadataKey::metrics(i % 250, i / 250), blob,
                          2 * units::KB, 0.0);
  }
  std::int32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.engine.lookup(MetadataKey::metrics(probe % 250, probe / 250), 1.0));
    probe = (probe + 1) % n;
  }
  state.counters["resident_MB"] =
      static_cast<double>(h.engine.bookkeeping_bytes()) / 1e6;
}
BENCHMARK(BM_CacheEngineLookup)->Arg(1000)->Arg(100000);

void BM_CacheEngineInsertEvict(benchmark::State& state) {
  EngineHarness h;
  const auto blob = std::make_shared<const Blob>(Blob{1});
  std::int32_t i = 0;
  for (auto _ : state) {
    const auto key = MetadataKey::metrics(i % 250, i);
    h.engine.cache_object(key, blob, 2 * units::KB, 0.0);
    benchmark::DoNotOptimize(h.engine.evict(key));
    ++i;
  }
}
BENCHMARK(BM_CacheEngineInsertEvict);

}  // namespace
}  // namespace flstore::core

BENCHMARK_MAIN();
