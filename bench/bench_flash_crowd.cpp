// Flash-crowd elasticity (ISSUE 9 control-plane tentpole): the closed loop
// vs static provisioning when a 10x request surge hits the serving plane.
//
// One tenant, a 30-minute horizon, ticks on 60 s round boundaries. A
// trickle of reads runs throughout; in [600, 1200) the full crowd arrives
// at 6 qps — roughly 3x what a single shard serves. Three arms over the
// identical trace:
//
//   static-base  1 shard forever (what the tenant provisioned)
//   static-peak  4 shards forever (provision for the crowd, pay all day)
//   closed-loop  1 shard + Controller: SLO burn drives scale-out toward
//                the sizing oracle during the crowd, calm ticks walk the
//                fleet back down after
//
// The economics under test are FLStore's: serving capacity billed per
// warm-shard-hour means the static-peak arm buys crowd-grade tail latency
// by idling 4 shards through the 80% of the horizon that is trickle. The
// closed loop should absorb the crowd within a few rounds of its onset
// (queueing collapses once the fleet reaches the oracle target) and then
// shed the extra shards, ending the run at trickle-sized idle cost.
//
// Verdicts (also in the JSON): the loop scales out during the crowd and
// back in after; crowd queueing is absorbed within 5 rounds of onset; the
// run's total bill beats static-peak; the post-crowd idle $/hr beats
// static-peak's; the crowd-window tail beats static-base's.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "control/control_loop.hpp"
#include "control/sharded_surface.hpp"

using namespace flstore;

namespace {

constexpr double kHorizonS = 1800.0;
constexpr double kCrowdStartS = 600.0;
constexpr double kCrowdEndS = 1200.0;
constexpr double kCrowdQps = 6.0;
constexpr double kTickS = 60.0;
constexpr int kPeakShards = 4;
constexpr double kAbsorbRounds = 5;    // crowd queueing gone within 5 ticks
constexpr double kAbsorbedQueueS = 30.0;  ///< mean per-round queue bound

fed::FLJobConfig bench_job() {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 24;
  cfg.clients_per_round = 6;
  cfg.rounds = 80;
  cfg.seed = 100;
  return cfg;
}

/// Lenient objectives (a cold fetch is good; minutes of crowd queueing is
/// bad) over a 60/120 s fast/slow window pair — the same calibration the
/// control-loop regression tests pin down.
obs::Telemetry::Config lenient_slo() {
  obs::Telemetry::Config cfg;
  cfg.slo.objective_latency_s = {30.0, 120.0, 60.0, 30.0};
  cfg.slo.windows_s = {60.0, 120.0};
  return cfg;
}

/// One tenant on `shards` warm shards, telemetry attached.
struct Arm {
  explicit Arm(int shards)
      : telemetry(lenient_slo()),
        cold(sim::objstore_link(), PricingCatalog::aws()),
        job(bench_job()) {
    serve::ShardedStoreConfig cfg;
    cfg.worker_threads = 0;
    cfg.routing = serve::Routing::kHash;
    cfg.telemetry = &telemetry;
    store = std::make_unique<serve::ShardedStore>(cold, cfg);
    (void)store->add_tenant(job, {}, shards);
  }

  [[nodiscard]] std::vector<serve::TenantMix> mix() const {
    return {serve::TenantMix{0, &job, 1.0, {}, 3}};
  }

  obs::Telemetry telemetry;
  ObjectStore cold;
  fed::FLJob job;
  std::unique_ptr<serve::ShardedStore> store;
};

/// Full offered rate inside the crowd window, one request in ten outside.
std::vector<serve::ServiceRequest> make_trace(const Arm& arm) {
  serve::OpenLoopConfig cfg;
  cfg.offered_qps = kCrowdQps;
  cfg.duration_s = kHorizonS;
  cfg.round_interval_s = kTickS;
  cfg.seed = 7;
  std::vector<serve::ServiceRequest> out;
  std::size_t i = 0;
  for (const auto& r : serve::open_loop_trace(cfg, arm.mix())) {
    const bool crowd = r.request.arrival_s >= kCrowdStartS &&
                       r.request.arrival_s < kCrowdEndS;
    if (crowd || i++ % 10 == 0) out.push_back(r);
  }
  return out;
}

struct ArmResult {
  control::ControlLoopResult run;
  double p99_crowd_s = 0.0;   ///< tail latency of crowd-window arrivals
  double absorb_rounds = 99;  ///< ticks from onset until queueing subsides
  int peak_shards = 1;
  int final_shards = 1;
  double final_idle_usd_per_hour = 0.0;
  bool scaled_out_in_crowd = false;
};

ArmResult run_arm(Arm& arm, const std::vector<serve::ServiceRequest>& trace,
                  control::Controller* controller) {
  control::ShardedSurface surface(*arm.store, 0);
  control::ControlLoopConfig loop_cfg;
  loop_cfg.tick_interval_s = kTickS;
  loop_cfg.round_interval_s = kTickS;
  control::ControlLoop loop(*arm.store, arm.telemetry, surface, controller,
                            loop_cfg);
  ArmResult result;
  result.run = loop.run(trace, kHorizonS);

  SampleSet crowd_latency;
  // Absorbed = from some round boundary on, the mean queueing a crowd
  // round's arrivals see stays bounded through the crowd's end;
  // absorb_rounds is that first boundary, in rounds after onset. The mean
  // (not the worst single request) is the signal: hash routing leaves a
  // per-shard imbalance tail even on a fleet that is keeping up.
  std::array<double, 16> queue_sum_by_round{};
  std::array<std::size_t, 16> served_by_round{};
  for (const auto& rec : result.run.records) {
    const double at = rec.request.arrival_s;
    if (at < kCrowdStartS || at >= kCrowdEndS || rec.rejected) continue;
    crowd_latency.add(rec.latency_s());
    const auto round = std::min(
        static_cast<std::size_t>((at - kCrowdStartS) / kTickS),
        queue_sum_by_round.size() - 1);
    queue_sum_by_round[round] += rec.queue_s;
    ++served_by_round[round];
  }
  result.p99_crowd_s = crowd_latency.percentile(99.0);
  const auto crowd_rounds =
      static_cast<std::size_t>((kCrowdEndS - kCrowdStartS) / kTickS);
  for (std::size_t k = crowd_rounds; k-- > 0;) {
    const double mean =
        served_by_round[k] > 0
            ? queue_sum_by_round[k] / static_cast<double>(served_by_round[k])
            : 0.0;
    if (mean > kAbsorbedQueueS) {
      result.absorb_rounds = static_cast<double>(k + 1);
      break;
    }
    if (k == 0) result.absorb_rounds = 0;
  }

  for (const auto& tick : result.run.ticks) {
    result.peak_shards =
        std::max(result.peak_shards, tick.snapshot.active_shards);
    for (const auto& action : tick.actions) {
      if (action.kind == control::Controller::Action::Kind::kScaleOut &&
          action.at_s >= kCrowdStartS && action.at_s < kCrowdEndS + 300.0) {
        result.scaled_out_in_crowd = true;
      }
    }
  }
  if (!result.run.ticks.empty()) {
    result.final_shards = result.run.ticks.back().snapshot.active_shards;
    result.final_idle_usd_per_hour =
        result.run.ticks.back().snapshot.idle_usd_per_hour;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("flash_crowd");
  bench::banner("Flash crowd",
                "Closed-loop scale-out vs static provisioning under a surge");
  if (args.scale < 1.0) {
    bench::note(
        "note: fixed-size scenario (sim-time calibrated); --scale ignored");
  }

  std::printf(
      "\nCrowd of %.0f qps in [%.0f, %.0f) s over a %.0f s horizon "
      "(trickle 1/10 outside);\n%d-shard peak fleet, %.0f s ticks on round "
      "boundaries.\n",
      kCrowdQps, kCrowdStartS, kCrowdEndS, kHorizonS, kPeakShards, kTickS);

  Arm base_arm(1);
  const auto trace = make_trace(base_arm);
  const auto base = run_arm(base_arm, trace, nullptr);

  Arm peak_arm(kPeakShards);
  const auto peak = run_arm(peak_arm, trace, nullptr);

  Arm loop_arm(1);
  control::ControllerConfig ctl_cfg;
  ctl_cfg.scale_cooldown_ticks = 0;
  ctl_cfg.scale_in_quiet_ticks = 2;
  ctl_cfg.max_shards = kPeakShards;
  control::PlannerSizingOracle oracle(
      control::PlannerSizingOracle::Config{0.7, kPeakShards});
  control::Controller controller(ctl_cfg, oracle);
  const auto loop = run_arm(loop_arm, trace, &controller);

  struct Row {
    const char* key;
    const char* label;
    const ArmResult* r;
  };
  const Row rows[] = {{"static_base", "static-base (1 shard)", &base},
                      {"static_peak", "static-peak (4 shards)", &peak},
                      {"closed_loop", "closed-loop controller", &loop}};
  // Keep-alive runs micro-dollars per hour (serverless keep-alive is the
  // cheap side of the paper's cost claim) — print it in u$ so the per-arm
  // difference is visible next to the request fees.
  Table table({"arm", "p99 crowd (s)", "absorbed (rounds)", "peak shards",
               "final shards", "final idle (u$/hr)", "infra (u$)",
               "requests ($)", "total ($)"});
  for (const auto& row : rows) {
    const auto& r = *row.r;
    const double total = r.run.infra_usd + r.run.request_usd;
    table.add_row({row.label, fmt(r.p99_crowd_s, 1), fmt(r.absorb_rounds, 0),
                   std::to_string(r.peak_shards),
                   std::to_string(r.final_shards),
                   fmt(r.final_idle_usd_per_hour * 1e6, 1),
                   fmt(r.run.infra_usd * 1e6, 1),
                   fmt(r.run.request_usd, 3), fmt(total, 3)});
    const std::string prefix = row.key;
    report.add(prefix + "/p99_crowd_s", r.p99_crowd_s, "s");
    report.add(prefix + "/absorb_rounds", r.absorb_rounds);
    report.add(prefix + "/peak_shards", r.peak_shards);
    report.add(prefix + "/final_shards", r.final_shards);
    report.add(prefix + "/final_idle_usd_per_hour", r.final_idle_usd_per_hour,
               "$/hr");
    report.add(prefix + "/infra_usd", r.run.infra_usd, "$");
    report.add(prefix + "/total_usd", total, "$");
    report.add(prefix + "/completed", static_cast<double>(r.run.completed));
    report.add(prefix + "/rejected", static_cast<double>(r.run.rejected));
  }
  std::printf("\n%s", table.to_string().c_str());

  const double loop_total = loop.run.infra_usd + loop.run.request_usd;
  const double peak_total = peak.run.infra_usd + peak.run.request_usd;
  const bool scales_out_then_in = loop.scaled_out_in_crowd &&
                                  loop.peak_shards > 1 &&
                                  loop.final_shards < loop.peak_shards;
  const bool absorbed = loop.absorb_rounds <= kAbsorbRounds;
  const bool cheaper_than_peak = loop_total < peak_total;
  const bool idle_beats_peak =
      loop.final_idle_usd_per_hour < peak.final_idle_usd_per_hour;
  const bool tail_beats_base = loop.p99_crowd_s < base.p99_crowd_s;

  std::printf(
      "\nVerdicts:\n"
      "  loop scales out in the crowd, back in after ..... %s\n"
      "  crowd absorbed within %.0f rounds of onset ....... %s\n"
      "  total bill beats static-peak .................... %s\n"
      "  post-crowd idle $/hr beats static-peak .......... %s\n"
      "  crowd p99 beats static-base ..................... %s\n",
      scales_out_then_in ? "yes" : "NO", kAbsorbRounds,
      absorbed ? "yes" : "NO", cheaper_than_peak ? "yes" : "NO",
      idle_beats_peak ? "yes" : "NO", tail_beats_base ? "yes" : "NO");
  report.add("verdict/scales_out_then_back_in",
             scales_out_then_in ? 1.0 : 0.0);
  report.add("verdict/crowd_absorbed_within_5_rounds", absorbed ? 1.0 : 0.0);
  report.add("verdict/total_cost_beats_static_peak",
             cheaper_than_peak ? 1.0 : 0.0);
  report.add("verdict/post_crowd_idle_beats_static_peak",
             idle_beats_peak ? 1.0 : 0.0);
  report.add("verdict/crowd_p99_beats_static_base",
             tail_beats_base ? 1.0 : 0.0);
  report.attach_telemetry(loop_arm.telemetry.metrics);
  report.write(args);
  return 0;
}
