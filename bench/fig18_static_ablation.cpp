// Figure 18 (Appendix C): FLStore vs FLStore-Static when the workload
// switches from model inference to malicious filtering. FLStore-Static
// keeps the inference-era P1 policy (only the aggregated model cached), so
// every filtering request re-fetches the round from the persistent store.
//
// Paper headlines: FLStore cuts per-request latency by ~99 % (8 s) and
// costs by ~3x against the static configuration.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig18");
  bench::banner("Figure 18",
                "FLStore vs FLStore-Static across a workload switch");

  auto cfg = bench::paper_scenario("mobilenet_v3_small", 0.1 * args.scale);
  // The two 30-round phases below are the figure's structure; --scale
  // shrinks the trace but the job must still own at least 60 rounds.
  cfg.rounds = std::max<RoundId>(cfg.rounds, 60);
  sim::Scenario sc(cfg);

  auto adaptive = sc.make_flstore_variant(core::PolicyMode::kTailored);
  auto static_store = sc.make_flstore_variant(core::PolicyMode::kTailoredStatic);

  // Phase 1: inference era (both caches tuned for P1 work).
  RoundId round = 0;
  double now = 0.0;
  RequestId id = 1;
  for (; round < 30; ++round, now += cfg.round_interval_s) {
    const auto rec = sc.job().make_round(round);
    adaptive->ingest_round(rec, now);
    static_store->ingest_round(rec, now);
    fed::NonTrainingRequest req{id++, fed::WorkloadType::kInference, round,
                                kNoClient, now + 5.0};
    (void)adaptive->serve(req, req.arrival_s);
    req.id = id++;
    (void)static_store->serve(req, req.arrival_s);
  }

  // Phase 2: the workload switches to malicious filtering. FLStore's
  // selector applies P2; the static variant keeps P1.
  SampleSet adaptive_lat, static_lat, adaptive_cost, static_cost;
  for (; round < 60; ++round, now += cfg.round_interval_s) {
    const auto rec = sc.job().make_round(round);
    adaptive->ingest_round(rec, now);
    static_store->ingest_round(rec, now);
    fed::NonTrainingRequest req{id++, fed::WorkloadType::kMaliciousFilter,
                                round, kNoClient, now + 5.0};
    const auto a = adaptive->serve(req, req.arrival_s);
    req.id = id++;
    const auto s = static_store->serve(req, req.arrival_s);
    adaptive_lat.add(a.latency_s);
    static_lat.add(s.latency_s);
    adaptive_cost.add(a.cost_usd);
    static_cost.add(s.cost_usd);
  }

  Table table({"variant", "latency med [q1,q3] (s)", "mean cost ($)"});
  table.add_row({"FLStore", sim::quartile_cell(adaptive_lat),
                 fmt_usd(adaptive_cost.mean())});
  table.add_row({"FLStore-Static", sim::quartile_cell(static_lat),
                 fmt_usd(static_cost.mean())});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("latency reduction vs static policy", 99.0,
                  percent_reduction(static_lat.mean(), adaptive_lat.mean()),
                  "%");
  report.headline("absolute latency reduction", 8.0,
                  static_lat.mean() - adaptive_lat.mean(), "s");
  report.headline("cost ratio static / adaptive", 3.0,
                  static_cost.mean() / adaptive_cost.mean(), "x");
  report.write(args);
  return 0;
}
