// Figure 15 (Appendix B.1): accumulated 50-hour total-time breakup —
// ObjStore-Agg communication vs computation, against FLStore's total — per
// workload and model.
//
// Paper headlines: communication ≈ 98.9 % of ObjStore-Agg inference time;
// average latency decrease 82.04 % (Resnet18), 47.33 % (MobileNet),
// 50.44 % (EfficientNet), 20.45 % (Swin).
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig15");
  bench::banner("Figure 15",
                "Total time breakup over 50 h / 3000 requests (hours)");

  struct PaperAvg {
    const char* model;
    double reduction_pct;
  };
  const PaperAvg paper[] = {{"resnet18", 82.04},
                            {"mobilenet_v3_small", 47.33},
                            {"efficientnet_v2_s", 50.44},
                            {"swin_v2_t", 20.45}};

  for (const auto& [model, paper_red] : paper) {
    sim::Scenario sc(bench::paper_scenario(model, args.scale));
    const auto trace = sc.trace();
    auto fl = sim::adapt(sc.flstore());
    auto base = sim::adapt(sc.objstore_agg());
    const auto fl_run = sim::run_trace(*fl, sc.job(), trace,
                                       sc.config().duration_s,
                                       sc.config().round_interval_s);
    const auto base_run = sim::run_trace(*base, sc.job(), trace,
                                         sc.config().duration_s,
                                         sc.config().round_interval_s);
    const auto fl_by = sim::by_workload(fl_run);
    const auto base_by = sim::by_workload(base_run);

    Table table({"application", "ObjStore comm (h)", "ObjStore comp (h)",
                 "FLStore total (h)"});
    for (const auto type : fed::paper_workloads()) {
      const auto& b = base_by.at(type);
      const auto& f = fl_by.at(type);
      table.add_row({fed::paper_label(type), fmt(b.comm.sum() / 3600.0, 2),
                     fmt(b.comp.sum() / 3600.0, 3),
                     fmt(f.latency.sum() / 3600.0, 3)});
    }
    std::printf("\n-- %s --\n%s", bench::panel_label(model).c_str(),
                table.to_string().c_str());

    const double comm_share = base_run.total_comm_s() /
                              (base_run.total_comm_s() + base_run.total_comp_s()) *
                              100.0;
    report.headline(std::string("comm share of baseline total / ") + model,
                    98.9, comm_share, "%");
    report.headline(std::string("avg latency reduction / ") + model, paper_red,
                    percent_reduction(base_run.total_latency_s(),
                                      fl_run.total_latency_s()),
                    "%");
  }
  report.write(args);
  return 0;
}
