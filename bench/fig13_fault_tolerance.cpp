// Figure 13 (Appendix A.2): FLStore latency and cost per request under
// Zipfian function reclamations, for FI = 1..5 function instances (replica
// copies) per group. EfficientNet, 3000 requests / 50 hours.
//
// Paper headlines: FI=1 is worst; 3 instances cut latency by 50-150 s per
// request versus FI=1 under faults; FI=3..5 are nearly flat.
#include "bench_common.hpp"

using namespace flstore;

int main() {
  bench::banner("Figure 13",
                "Latency/cost per request vs function instances (faults)");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.25);
  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kPersonalization, fed::WorkloadType::kClustering,
      fed::WorkloadType::kMaliciousFilter, fed::WorkloadType::kIncentives,
      fed::WorkloadType::kSchedulingCluster, fed::WorkloadType::kReputation,
      fed::WorkloadType::kSchedulingPerf, fed::WorkloadType::kCosineSimilarity};
  cfg.workloads = workloads;

  // One Zipf reclamation schedule shared by every FI configuration.
  Rng fault_rng(77);
  FaultInjectorConfig fic;
  fic.mean_interarrival_s = 120.0;  // a reclamation storm: one per 2 min
  fic.population = 16;
  fic.zipf_exponent = 1.0;
  const auto faults =
      generate_fault_schedule(fic, cfg.duration_s, fault_rng);

  Table lat({"application", "FI=1 (s)", "FI=2 (s)", "FI=3 (s)", "FI=4 (s)",
             "FI=5 (s)"});
  Table cost({"application", "FI=1 ($)", "FI=2 ($)", "FI=3 ($)", "FI=4 ($)",
              "FI=5 ($)"});

  std::map<fed::WorkloadType, std::vector<double>> lat_cells, cost_cells;
  double fi1_mean = 0.0, fi3_mean = 0.0;

  for (int fi = 1; fi <= 5; ++fi) {
    auto run_cfg = cfg;
    run_cfg.replicas = fi;
    sim::Scenario sc(run_cfg);
    const auto trace = sc.trace();
    auto adapter = sim::adapt(sc.flstore());
    sim::RunnerOptions opts;
    opts.faults = faults;
    const auto run = sim::run_trace(*adapter, sc.job(), trace,
                                    run_cfg.duration_s,
                                    run_cfg.round_interval_s, opts);
    const auto by = sim::by_workload(run);
    double total = 0.0;
    std::size_t n = 0;
    for (const auto type : workloads) {
      lat_cells[type].push_back(by.at(type).latency.mean());
      cost_cells[type].push_back(by.at(type).cost.mean());
      total += by.at(type).latency.sum();
      n += by.at(type).latency.size();
    }
    if (fi == 1) fi1_mean = total / static_cast<double>(n);
    if (fi == 3) fi3_mean = total / static_cast<double>(n);
  }

  for (const auto type : workloads) {
    std::vector<std::string> lrow{fed::paper_label(type)};
    std::vector<std::string> crow{fed::paper_label(type)};
    for (int fi = 0; fi < 5; ++fi) {
      lrow.push_back(fmt(lat_cells[type][static_cast<std::size_t>(fi)], 2));
      crow.push_back(
          fmt_usd(cost_cells[type][static_cast<std::size_t>(fi)]));
    }
    lat.add_row(lrow);
    cost.add_row(crow);
  }
  std::printf("\nPer-request latency under faults:\n%s",
              lat.to_string().c_str());
  std::printf("\nPer-request cost under faults:\n%s", cost.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("mean per-request latency FI=1", 60.0, fi1_mean, "s");
  sim::print_headline("latency saved per request by FI=3 vs FI=1", 50.0,
                      fi1_mean - fi3_mean, "s");
  bench::note(
      "Shape check: FI=1 pays recurring re-fetches; FI>=3 absorbs the Zipf\n"
      "fault storm with only failover timeouts, as in the paper.");
  return 0;
}
