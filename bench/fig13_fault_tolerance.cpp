// Figure 13 (Appendix A.2): FLStore latency and cost per request under
// Zipfian function reclamations, for FI = 1..5 function instances (replica
// copies) per group. EfficientNet, 3000 requests / 50 hours.
//
// Paper headlines: FI=1 is worst; 3 instances cut latency by 50-150 s per
// request versus FI=1 under faults; FI=3..5 are nearly flat.
//
// Second panel (this repo's extension): the same sweep one layer down —
// the cold tier's serving-region count (backend::ReplicatedColdStore, warm
// NVMe regions + far object-store origin) swept 1..5 under a Zipf region
// outage schedule, mirroring the FI curve at the backend level.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig13");
  bench::banner("Figure 13",
                "Latency/cost per request vs function instances (faults)");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.25 * args.scale);
  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kPersonalization, fed::WorkloadType::kClustering,
      fed::WorkloadType::kMaliciousFilter, fed::WorkloadType::kIncentives,
      fed::WorkloadType::kSchedulingCluster, fed::WorkloadType::kReputation,
      fed::WorkloadType::kSchedulingPerf, fed::WorkloadType::kCosineSimilarity};
  cfg.workloads = workloads;

  // One Zipf reclamation schedule shared by every FI configuration.
  Rng fault_rng(77);
  FaultInjectorConfig fic;
  fic.mean_interarrival_s = 120.0;  // a reclamation storm: one per 2 min
  fic.population = 16;
  fic.zipf_exponent = 1.0;
  const auto faults =
      generate_fault_schedule(fic, cfg.duration_s, fault_rng);

  Table lat({"application", "FI=1 (s)", "FI=2 (s)", "FI=3 (s)", "FI=4 (s)",
             "FI=5 (s)"});
  Table cost({"application", "FI=1 ($)", "FI=2 ($)", "FI=3 ($)", "FI=4 ($)",
              "FI=5 ($)"});

  std::map<fed::WorkloadType, std::vector<double>> lat_cells, cost_cells;
  double fi1_mean = 0.0, fi3_mean = 0.0;

  for (int fi = 1; fi <= 5; ++fi) {
    auto run_cfg = cfg;
    run_cfg.replicas = fi;
    sim::Scenario sc(run_cfg);
    const auto trace = sc.trace();
    auto adapter = sim::adapt(sc.flstore());
    sim::RunnerOptions opts;
    opts.faults = faults;
    const auto run = sim::run_trace(*adapter, sc.job(), trace,
                                    run_cfg.duration_s,
                                    run_cfg.round_interval_s, opts);
    const auto by = sim::by_workload(run);
    double total = 0.0;
    std::size_t n = 0;
    for (const auto type : workloads) {
      lat_cells[type].push_back(by.at(type).latency.mean());
      cost_cells[type].push_back(by.at(type).cost.mean());
      total += by.at(type).latency.sum();
      n += by.at(type).latency.size();
    }
    const auto denom = static_cast<double>(std::max<std::size_t>(1, n));
    if (fi == 1) fi1_mean = total / denom;
    if (fi == 3) fi3_mean = total / denom;
  }

  for (const auto type : workloads) {
    std::vector<std::string> lrow{fed::paper_label(type)};
    std::vector<std::string> crow{fed::paper_label(type)};
    for (int fi = 0; fi < 5; ++fi) {
      lrow.push_back(fmt(lat_cells[type][static_cast<std::size_t>(fi)], 2));
      crow.push_back(
          fmt_usd(cost_cells[type][static_cast<std::size_t>(fi)]));
    }
    lat.add_row(lrow);
    cost.add_row(crow);
  }
  std::printf("\nPer-request latency under faults:\n%s",
              lat.to_string().c_str());
  std::printf("\nPer-request cost under faults:\n%s", cost.to_string().c_str());

  // --- region-count sweep on the backend seam -----------------------------
  bench::note(
      "\nCold-tier region sweep — like FI, but for the replicated backend:\n"
      "serving regions 1..5 under a Zipf region-outage schedule (the far\n"
      "origin store never fails; read-repair heals replicas after outages):");
  sim::Scenario geo_sc(cfg);
  const auto geo_trace = geo_sc.trace();
  Rng region_rng(101);
  FaultInjectorConfig region_fic;
  region_fic.mean_interarrival_s = 3600.0;
  region_fic.population = bench::kGeoFaultDomains;
  const auto region_faults =
      generate_fault_schedule(region_fic, cfg.duration_s, region_rng);
  constexpr double kOutageDurationS = 900.0;

  Table geo({"serving regions", "mean lat (s)", "mean $/req",
             "failover reads", "egress $", "idle $/h"});
  std::vector<double> region_lat;
  for (int regions = 1; regions <= 5; ++regions) {
    const auto row = bench::run_geo_deployment(
        geo_sc, geo_trace, regions,
        bench::geo_outages(region_faults, regions, kOutageDurationS));
    geo.add_row({std::to_string(regions), fmt(row.mean_latency_s, 3),
                 fmt_usd(row.mean_cost_usd),
                 std::to_string(row.failover_reads), fmt_usd(row.egress_usd),
                 fmt_usd(row.idle_usd_per_hour)});
    region_lat.push_back(row.mean_latency_s);
    const std::string prefix =
        "backend_regions/" + std::to_string(regions);
    report.add(prefix + "/mean_latency_s", row.mean_latency_s, "s");
    report.add(prefix + "/mean_cost_usd", row.mean_cost_usd, "$");
    report.add(prefix + "/egress_usd", row.egress_usd, "$");
    report.add(prefix + "/idle_usd_per_hour", row.idle_usd_per_hour, "$/h");
  }
  std::printf("%s", geo.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("mean per-request latency FI=1", 60.0, fi1_mean, "s");
  report.headline("latency saved per request by FI=3 vs FI=1", 50.0,
                  fi1_mean - fi3_mean, "s");
  report.add("backend_regions/latency_saved_by_3_vs_1_s",
             region_lat[0] - region_lat[2], "s");
  bench::note(
      "Shape check: FI=1 pays recurring re-fetches; FI>=3 absorbs the Zipf\n"
      "fault storm with only failover timeouts, as in the paper — and the\n"
      "cold tier's region sweep mirrors the same curve one layer down.");
  report.write(args);
  return 0;
}
