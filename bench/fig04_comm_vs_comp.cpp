// Figure 4 (§2.3): communication vs computation latency of non-training
// workloads executed on a serverless function that fetches its inputs from
// the cloud object store (no FLStore caching) — five workloads, three
// models.
//
// Paper headlines: average communication 89.1 s vs average computation
// 2.8 s — a 31x gap, the motivation for unifying the planes.
#include "bench_common.hpp"

#include "core/flstore.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig04");
  bench::banner("Figure 4",
                "Comm vs comp latency on a cloud function + object store");

  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kCosineSimilarity, fed::WorkloadType::kDebugging,
      fed::WorkloadType::kInference, fed::WorkloadType::kMaliciousFilter,
      fed::WorkloadType::kSchedulingCluster};
  const std::vector<std::string> models = {"resnet18", "efficientnet_v2_s",
                                           "mobilenet_v3_small"};

  double comm_sum = 0.0, comp_sum = 0.0;
  std::size_t n = 0;

  Table table({"application", "model", "communication (s)",
               "computation (s)", "comm/comp"});
  for (const auto& model : models) {
    fed::FLJobConfig job_cfg;
    job_cfg.model = model;
    job_cfg.rounds =
        std::max<RoundId>(1, static_cast<RoundId>(30 * args.scale));
    fed::FLJob job(job_cfg);
    ObjectStore store(sim::objstore_link(), PricingCatalog::aws());
    const auto fn_profile = core::function_runtime_config(job.model()).profile;

    // Populate the data plane.
    std::vector<fed::RoundRecord> records;
    for (RoundId r = 0; r < job_cfg.rounds; ++r) {
      records.push_back(job.make_round(r));
    }
    baselines::BaselineConfig base_cfg;
    base_cfg.vm_profile = fn_profile;  // compute happens *on the function*
    baselines::ObjStoreAggregator fn_like(base_cfg, job, store);
    for (const auto& rec : records) fn_like.ingest_round(rec, 0.0);

    RequestId id = 1;
    for (const auto type : workloads) {
      fed::NonTrainingRequest req{id++, type, job_cfg.rounds - 1, kNoClient,
                                  0.0};
      const auto res = fn_like.serve(req, 0.0);
      table.add_row({fed::paper_label(type), bench::panel_label(model),
                     fmt(res.comm_s, 1), fmt(res.comp_s, 2),
                     fmt(res.comm_s / std::max(res.comp_s, 1e-9), 1) + "x"});
      comm_sum += res.comm_s;
      comp_sum += res.comp_s;
      ++n;
    }
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("average communication latency", 89.1,
                  comm_sum / static_cast<double>(n), "s");
  report.headline("average computation latency", 2.8,
                  comp_sum / static_cast<double>(n), "s");
  report.headline("communication / computation ratio", 31.0,
                  comm_sum / comp_sum, "x");
  report.write(args);
  return 0;
}
