// Figure 1: the non-training portion of total per-round FL latency, for ten
// applications (200-client pool, EfficientNet, conventional ObjStore-Agg
// serving).
//
// Paper annotations: shares range 11 % (Sched. Cluster) to 60 % (Debugging);
// "a single non-training application can comprise up to 60 % of the total
// latency of the FL job".
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig01");
  bench::banner("Figure 1",
                "Non-training share of per-round FL latency (EfficientNet)");

  sim::ScenarioConfig cfg =
      bench::paper_scenario("efficientnet_v2_s", 0.2 * args.scale);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();
  auto base = sim::adapt(sc.objstore_agg());
  const auto run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                  cfg.round_interval_s);
  const auto by = sim::by_workload(run);

  // Average training latency per round over a spread of sample rounds
  // (stride adapts so a small --scale never indexes past the job's rounds).
  double train_latency = 0.0;
  const auto stride = std::max<RoundId>(1, cfg.rounds / 20);
  int samples = 0;
  for (RoundId r = 0; r < cfg.rounds && samples < 20; r += stride, ++samples) {
    train_latency += sim::training_profile(sc.job(), r).latency_s;
  }
  train_latency /= std::max(1, samples);

  Table table({"application", "non-training (s)", "training (s)",
               "total (s)", "non-training share"});
  double max_share = 0.0;
  for (const auto type : fed::paper_workloads()) {
    const auto it = by.find(type);
    if (it == by.end()) continue;  // tiny --scale traces can skip a workload
    const double nt = it->second.latency.mean();
    const double total = nt + train_latency;
    const double share = nt / total * 100.0;
    max_share = std::max(max_share, share);
    table.add_row({fed::paper_label(type), fmt(nt, 1), fmt(train_latency, 1),
                   fmt(total, 1), fmt_pct(share)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("max single-workload latency share", 60.0, max_share, "%");
  report.add("mean_training_latency_s", train_latency, "s");
  bench::note(
      "Shape check: debugging/incentives are the heaviest shares; metadata\n"
      "workloads (Sched. Perf.) are the lightest, as in the paper's bars.");
  report.write(args);
  return 0;
}
