// Figure 1: the non-training portion of total per-round FL latency, for ten
// applications (200-client pool, EfficientNet, conventional ObjStore-Agg
// serving).
//
// Paper annotations: shares range 11 % (Sched. Cluster) to 60 % (Debugging);
// "a single non-training application can comprise up to 60 % of the total
// latency of the FL job".
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main() {
  bench::banner("Figure 1",
                "Non-training share of per-round FL latency (EfficientNet)");

  sim::ScenarioConfig cfg = bench::paper_scenario("efficientnet_v2_s", 0.2);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();
  auto base = sim::adapt(sc.objstore_agg());
  const auto run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                  cfg.round_interval_s);
  const auto by = sim::by_workload(run);

  // Average training latency per round over a sample of rounds.
  double train_latency = 0.0;
  constexpr int kSampleRounds = 20;
  for (RoundId r = 0; r < kSampleRounds; ++r) {
    train_latency += sim::training_profile(sc.job(), r * 5).latency_s;
  }
  train_latency /= kSampleRounds;

  Table table({"application", "non-training (s)", "training (s)",
               "total (s)", "non-training share"});
  double max_share = 0.0;
  for (const auto type : fed::paper_workloads()) {
    const double nt = by.at(type).latency.mean();
    const double total = nt + train_latency;
    const double share = nt / total * 100.0;
    max_share = std::max(max_share, share);
    table.add_row({fed::paper_label(type), fmt(nt, 1), fmt(train_latency, 1),
                   fmt(total, 1), fmt_pct(share)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("max single-workload latency share", 60.0, max_share,
                      "%");
  bench::note(
      "Shape check: debugging/incentives are the heaviest shares; metadata\n"
      "workloads (Sched. Perf.) are the lightest, as in the paper's bars.");
  return 0;
}
