// Figure 20 (extension, not in the paper): the concurrent serving plane.
//
// The paper evaluates per-request latency and cost; this figure asks the
// production question the ROADMAP's north star implies — what happens under
// *offered load*. Two experiments on the §5.1 ResNet-18 job:
//
//  (a) Offered QPS × shard count: open-loop Poisson arrivals over the
//      paper's ten-workload mix, class-affinity sharding, SLO-aware (EDF)
//      scheduling. Reports sustained throughput, p50/p95/p99 end-to-end
//      latency (queueing included) and cost per 1k requests. A single shard
//      saturates and its tail explodes; four shards absorb the same load.
//
//  (b) Coalescing on/off at fixed load: hash routing spreads one tenant's
//      traffic over 4 shards with overlapping working sets under a
//      traditional LRU policy (every first touch misses), so concurrent
//      shards keep missing on the same cold objects. Single-flight
//      deduplication shares the in-flight fetch: fewer object-store GETs,
//      fewer request fees, less blocked-function time.
#include "bench_common.hpp"

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "obs/instrumented_backend.hpp"
#include "obs/telemetry.hpp"
#include "serve/load_generator.hpp"
#include "serve/sharded_store.hpp"

using namespace flstore;

namespace {

fed::FLJobConfig bench_job() {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 60;
  cfg.clients_per_round = 8;
  cfg.rounds = 200;
  cfg.seed = 20;
  return cfg;
}

constexpr double kRoundIntervalS = 30.0;
constexpr double kDurationS = 900.0;

serve::OpenLoopConfig load(double qps) {
  serve::OpenLoopConfig cfg;
  cfg.offered_qps = qps;
  cfg.duration_s = kDurationS;
  cfg.round_interval_s = kRoundIntervalS;
  cfg.seed = 11;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_args(argc, argv);
  if (args.scale != 1.0) {
    // This figure's load/duration are fixed (saturation points depend on
    // them); don't let the JSON artifact claim a scale that never applied.
    std::fprintf(stderr, "fig20 ignores --scale; running full-size\n");
    args.scale = 1.0;
  }
  bench::JsonReport report("fig20");
  bench::banner("Figure 20 (extension)",
                "Service throughput under offered load (src/serve/)");

  fed::FLJob job(bench_job());
  const std::vector<serve::TenantMix> mix = {
      serve::TenantMix{0, &job, 1.0, {}, 5}};

  // ---- (a) offered QPS x shard count --------------------------------------
  bench::note(
      "\n(a) Open-loop Poisson load, SLO (EDF) scheduler, per 15-minute run.\n"
      "    Latency is end-to-end (queue + comm + comp). Hash routing\n"
      "    load-balances; the class-affinity row shows the P2-skew ceiling\n"
      "    (7 of 10 mixed workloads share one class queue).");
  Table sweep({"offered qps", "shards", "routing", "throughput (qps)",
               "p50 (s)", "p95 (s)", "p99 (s)", "mean queue (s)",
               "$ / 1k req"});
  double tput_1shard = 0.0, tput_4shard = 0.0;
  double p95_1shard = 0.0, p95_4shard = 0.0;
  serve::ServiceReport per_class;
  for (const double qps : {0.25, 0.5, 1.0}) {
    const auto trace = serve::open_loop_trace(load(qps), mix);
    std::vector<std::pair<int, serve::Routing>> cells = {
        {1, serve::Routing::kHash},
        {2, serve::Routing::kHash},
        {4, serve::Routing::kHash}};
    if (qps == 1.0) cells.push_back({4, serve::Routing::kClassAffinity});
    for (const auto& [shards, routing] : cells) {
      ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
      serve::ShardedStoreConfig cfg;
      cfg.worker_threads = 2;
      cfg.routing = routing;
      serve::ShardedStore plane(cold, cfg);
      (void)plane.add_tenant(job, {}, shards);
      const auto report = plane.serve_open_loop(trace, kRoundIntervalS);
      const auto lat = report.latencies();
      sweep.add_row({fmt(qps, 2), std::to_string(shards),
                     serve::to_string(routing),
                     fmt(report.throughput_qps(), 3),
                     fmt(lat.percentile(50.0), 2), fmt(lat.percentile(95.0), 2),
                     fmt(lat.percentile(99.0), 2),
                     fmt(report.queue_waits().mean(), 2),
                     fmt_usd(report.cost_per_1k_usd())});
      if (qps == 1.0 && routing == serve::Routing::kHash) {
        if (shards == 1) {
          tput_1shard = report.throughput_qps();
          p95_1shard = lat.percentile(95.0);
        } else if (shards == 4) {
          tput_4shard = report.throughput_qps();
          p95_4shard = lat.percentile(95.0);
          per_class = report;  // per-class breakdown printed below
        }
      }
    }
  }
  std::printf("%s", sweep.to_string().c_str());

  // The SLO scheduler's point, visible per class: P1 inference keeps its
  // sub-second latency even while the P2 analytics queue carries a backlog.
  bench::note("\nPer-class latency at 1 qps offered, 4 hash shards:");
  Table classes({"class", "completed", "p50 (s)", "p95 (s)"});
  for (const auto c : {fed::PolicyClass::kP1, fed::PolicyClass::kP2,
                       fed::PolicyClass::kP3, fed::PolicyClass::kP4}) {
    // The guarded percentile: a class with zero completions (a saturated
    // run can starve one out entirely) prints 0.00, not a SampleSet throw.
    classes.add_row({fed::to_string(c),
                     std::to_string(per_class.latencies(c).size()),
                     fmt(per_class.latency_percentile_s(50.0, c), 2),
                     fmt(per_class.latency_percentile_s(95.0, c), 2)});
  }
  std::printf("%s", classes.to_string().c_str());

  // ---- (b) coalescing on/off ----------------------------------------------
  bench::note(
      "\n(b) Same trace replayed (service at arrival) over 4 hash-routed LRU\n"
      "    shards: overlapping working sets, every first touch misses, so\n"
      "    concurrent shards keep missing on the same cold objects.");
  Table co({"coalescing", "cold GETs", "joins", "store fees saved ($)",
            "wait saved (s)", "total cost ($)", "p95 (s)"});
  const auto co_trace = serve::open_loop_trace(load(0.5), mix);
  double cost_with = 0.0, cost_without = 0.0;
  std::uint64_t gets_with = 0, gets_without = 0;
  for (const bool coalesce : {false, true}) {
    ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
    serve::ShardedStoreConfig cfg;
    cfg.worker_threads = 2;
    cfg.routing = serve::Routing::kHash;
    cfg.coalesce_cold_fetches = coalesce;
    serve::ShardedStore plane(cold, cfg);
    core::FLStoreConfig store_cfg;
    store_cfg.policy.mode = core::PolicyMode::kLru;
    (void)plane.add_tenant(job, store_cfg, 4);
    const auto report = plane.replay(co_trace, kRoundIntervalS);
    const auto stats = report.coalescer;
    co.add_row({coalesce ? "on" : "off", std::to_string(cold.get_count()),
                std::to_string(stats.joins), fmt(stats.fees_saved_usd, 6),
                fmt(stats.wait_saved_s, 1), fmt(report.total_cost_usd(), 2),
                fmt(report.latencies().percentile(95.0), 2)});
    (coalesce ? cost_with : cost_without) = report.total_cost_usd();
    (coalesce ? gets_with : gets_without) = cold.get_count();
  }
  std::printf("%s", co.to_string().c_str());

  // ---- (c) bounded per-class memory: tailored vs LRU ----------------------
  bench::note(
      "\n(c) Capacity-squeezed shards (6 model objects each), class-affinity\n"
      "    routing, trace replayed at arrival (cache efficiency, not\n"
      "    queueing). Per-class byte budgets bound each P1-P4 partition so\n"
      "    the P2 round churn cannot wash out the other classes' working\n"
      "    sets; a traditional LRU cache is classless, so no partition can\n"
      "    protect it. 'pinned forced' counts pinned P3 tracks lost to\n"
      "    capacity pressure — the ordered victim index takes one only when\n"
      "    a shard's whole eviction scope is pinned.");
  Table pt({"policy", "partitions", "hit %", "P1 hit %", "P3 hit %",
            "P4 hit %", "$ / 1k req", "forced evictions", "pinned forced"});
  const auto pt_trace = serve::open_loop_trace(load(0.5), mix);
  const auto obj = job.model().object_bytes;
  struct PtCell {
    core::PolicyMode mode;
    bool partitioned;
  };
  const PtCell cells[] = {{core::PolicyMode::kTailored, false},
                          {core::PolicyMode::kTailored, true},
                          {core::PolicyMode::kLru, false}};
  double part_hit_rate = 0.0, plain_hit_rate = 0.0;
  for (const auto& cell : cells) {
    ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
    serve::ShardedStoreConfig cfg;
    cfg.worker_threads = 2;
    cfg.routing = serve::Routing::kClassAffinity;
    serve::ShardedStore plane(cold, cfg);
    core::FLStoreConfig store_cfg;
    store_cfg.policy.mode = cell.mode;
    store_cfg.cache_capacity = 6 * obj;
    if (cell.partitioned) {
      // P3's pinned tracks (update + metrics + aggregate per tracked
      // client) are the largest protected working set; P2 is churn-bound
      // either way, so it gets the smallest useful window.
      store_cfg.class_capacity = {1 * obj, 1 * obj, 3 * obj, 1 * obj};
    }
    (void)plane.add_tenant(job, store_cfg, 4);
    const auto report = plane.replay(pt_trace, kRoundIntervalS);
    std::uint64_t forced = 0, pinned_forced = 0;
    for (int s = 0; s < plane.shard_count(); ++s) {
      forced += plane.shard(s).engine().forced_evictions();
      pinned_forced += plane.shard(s).engine().pinned_forced_evictions();
    }
    // Per-class access ledger straight from the request records.
    std::array<std::uint64_t, 4> class_hits{}, class_total{};
    std::uint64_t hits = 0, total = 0;
    for (const auto& rec : report.records) {
      const auto c = fed::class_index(rec.policy_class());
      class_hits[c] += rec.hits;
      class_total[c] += rec.hits + rec.misses;
      hits += rec.hits;
      total += rec.hits + rec.misses;
    }
    const auto pct = [](std::uint64_t h, std::uint64_t t) {
      return t == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(t);
    };
    const auto rate = pct(hits, total);
    if (cell.mode == core::PolicyMode::kTailored) {
      (cell.partitioned ? part_hit_rate : plain_hit_rate) = rate;
    }
    pt.add_row({core::to_string(cell.mode),
                cell.partitioned ? "per-class" : "shared", fmt(rate, 2),
                fmt(pct(class_hits[0], class_total[0]), 2),
                fmt(pct(class_hits[2], class_total[2]), 2),
                fmt(pct(class_hits[3], class_total[3]), 2),
                fmt_usd(report.cost_per_1k_usd()), std::to_string(forced),
                std::to_string(pinned_forced)});
  }
  std::printf("%s", pt.to_string().c_str());
  std::printf(
      "\n  bounded-cache tailored hit rate: %.2f shared -> %.2f per-class\n",
      plain_hit_rate, part_hit_rate);

  // ---- (d) observability: telemetry plane on the 4-shard cell -------------
  bench::note(
      "\n(d) Unified telemetry plane on the 1 qps / 4 hash shards cell, cold\n"
      "    tier behind a tight ops/s throttle so the cold-miss span chain\n"
      "    includes real throttle waits. The same trace runs twice — plain\n"
      "    and instrumented — and because telemetry is pure bookkeeping in\n"
      "    simulated time, the two runs must agree (the < 5% overhead\n"
      "    verdict). Every request is sampled; --trace exports the spans.");
  const auto obs_trace = serve::open_loop_trace(load(1.0), mix);
  backend::ObjectStoreBackend::Config throttled_cfg;
  throttled_cfg.throttle.ops_per_s = 1.0;
  throttled_cfg.throttle.burst_ops = 2.0;
  const auto run_obs_cell =
      [&](obs::Telemetry* telemetry) -> serve::ServiceReport {
    ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
    backend::ObjectStoreBackend raw(cold, throttled_cfg);
    std::optional<obs::InstrumentedBackend> wrapped;
    if (telemetry != nullptr) {
      obs::InstrumentedBackend::Options opts;
      opts.metrics = &telemetry->metrics;
      opts.tracer = &telemetry->tracer;
      wrapped.emplace(raw, std::move(opts));
    }
    serve::ShardedStoreConfig cfg;
    cfg.worker_threads = 2;
    cfg.routing = serve::Routing::kHash;
    cfg.telemetry = telemetry;
    serve::ShardedStore plane(
        wrapped ? static_cast<backend::StorageBackend&>(*wrapped) : raw, cfg);
    (void)plane.add_tenant(job, {}, 4);
    return plane.serve_open_loop(obs_trace, kRoundIntervalS);
  };
  const auto off_report = run_obs_cell(nullptr);
  obs::Telemetry telemetry;  // sample_every = 1: every request traced
  const auto on_report = run_obs_cell(&telemetry);
  const bool overhead_ok = bench::check_observability_overhead(
      report, off_report.throughput_qps(), on_report.throughput_qps());

  // The acceptance chain: one sampled cold-miss request whose subtree runs
  // queue -> coalescer -> cache miss -> backend get -> throttle wait.
  const auto spans = telemetry.tracer.spans();
  std::map<obs::SpanId, std::size_t> by_id;
  std::map<obs::SpanId, std::vector<std::size_t>> children;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_id[spans[i].id] = i;
    if (spans[i].parent != obs::kNoSpan) {
      children[spans[i].parent].push_back(i);
    }
  }
  // Names in each request root's subtree, by walking up from every span.
  std::map<obs::SpanId, std::set<std::string>> subtree_names;
  for (const auto& span : spans) {
    auto root = span;
    while (root.parent != obs::kNoSpan) root = spans[by_id.at(root.parent)];
    if (root.name == "request") subtree_names[root.id].insert(span.name);
  }
  bool chain_ok = false;
  for (const auto& [root_id, names] : subtree_names) {
    chain_ok = names.count("sched.queue") != 0 &&
               names.count("cache.miss") != 0 &&
               names.count("coalesce.lead") != 0 &&
               names.count("backend.get") != 0 &&
               names.count("throttle.wait") != 0;
    if (chain_ok) break;
  }
  std::printf(
      "  cold-miss span chain (queue -> coalesce -> miss -> get -> throttle "
      "wait): %s\n",
      chain_ok ? "yes" : "NO");
  report.add("verdict/trace_full_span_chain", chain_ok ? 1.0 : 0.0);
  report.add("obs/spans", static_cast<double>(telemetry.tracer.span_count()));

  // Per-class p99 from the metrics histograms must agree with the exact
  // per-record percentiles within the log-bucket resolution (one bucket of
  // slack on top of the in-bucket interpolation error).
  const double tol = obs::HistogramConfig{}.growth() *
                     obs::HistogramConfig{}.growth();
  bool p99_ok = true;
  Table obs_table({"class", "requests", "exact p99 (s)", "histogram p99 (s)"});
  for (const auto c : {fed::PolicyClass::kP1, fed::PolicyClass::kP2,
                       fed::PolicyClass::kP3, fed::PolicyClass::kP4}) {
    const auto lat = on_report.latencies(c);
    if (lat.size() == 0) continue;
    const double exact = lat.percentile(99.0);
    const double est =
        telemetry.metrics
            .histogram("serve_request_latency_s",
                       {{obs::kLabelClass, fed::to_string(c)}})
            .percentile(99.0);
    obs_table.add_row({fed::to_string(c), std::to_string(lat.size()),
                       fmt(exact, 3), fmt(est, 3)});
    if (est > exact * tol || exact > est * tol) p99_ok = false;
  }
  std::printf("%s", obs_table.to_string().c_str());
  std::printf("  metrics p99 agrees with ServiceReport within bucket error: "
              "%s\n",
              p99_ok ? "yes" : "NO");
  report.add("verdict/metrics_p99_matches_report", p99_ok ? 1.0 : 0.0);
  if (!overhead_ok || !chain_ok || !p99_ok) {
    std::fprintf(stderr, "observability acceptance checks FAILED\n");
  }
  report.attach_telemetry(telemetry.metrics);
  bench::write_trace(args, telemetry.tracer, "fig20");

  std::printf("\nHeadlines:\n");
  std::printf(
      "  sustained throughput at 1 qps offered: %.2f qps on 1 shard -> "
      "%.2f qps on 4 (%.2fx)\n",
      tput_1shard, tput_4shard, tput_4shard / tput_1shard);
  std::printf(
      "  p95 latency 1 -> 4 shards at 1 qps offered: %.1f s -> %.1f s\n",
      p95_1shard, p95_4shard);
  std::printf("  coalescing cut cold-store GETs by %.1f%% and cost by %.1f%%\n",
              100.0 * (1.0 - double(gets_with) / double(gets_without)),
              100.0 * (1.0 - cost_with / cost_without));
  report.add("throughput_1shard_qps", tput_1shard, "qps");
  report.add("throughput_4shard_qps", tput_4shard, "qps");
  report.add("p95_1shard_s", p95_1shard, "s");
  report.add("p95_4shard_s", p95_4shard, "s");
  report.add("coalescing_get_reduction_pct",
             100.0 * (1.0 - double(gets_with) / double(gets_without)), "%");
  report.add("coalescing_cost_reduction_pct",
             100.0 * (1.0 - cost_with / cost_without), "%");
  report.add("bounded_cache_hit_rate_shared", plain_hit_rate);
  report.add("bounded_cache_hit_rate_partitioned", part_hit_rate);
  report.write(args);
  bench::note(
      "\nShape check: at 1 qps a single shard saturates — throughput falls\n"
      "below the offered rate and p95 is pure queueing. Four hash-routed\n"
      "shards restore throughput to the offered rate and collapse the tail;\n"
      "class-affinity keeps per-class access patterns intact but caps out on\n"
      "the P2-heavy mix. Coalescing removes the duplicate cold fetches that\n"
      "hash-routed shards would otherwise each pay for.");
  return 0;
}
