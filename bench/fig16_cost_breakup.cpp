// Figure 16 (Appendix B.1): accumulated 50-hour total-cost breakup —
// ObjStore-Agg communication vs computation cost vs FLStore — per workload
// and model.
//
// Paper headlines: I/O dominates baseline cost (87.46 % Resnet18, 76.96 %
// EfficientNet, 85.80 % MobileNet, 53.32 % Swin); average cost decrease
// 94.73 % (Resnet18), 92.72 % (MobileNet), 86.81 % (EfficientNet), 77.83 %
// (Swin).
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig16");
  bench::banner("Figure 16",
                "Total cost breakup over 50 h / 3000 requests ($)");

  struct PaperNums {
    const char* model;
    double io_share_pct;
    double reduction_pct;
  };
  const PaperNums paper[] = {{"resnet18", 87.46, 94.73},
                             {"mobilenet_v3_small", 85.80, 92.72},
                             {"efficientnet_v2_s", 76.96, 86.81},
                             {"swin_v2_t", 53.32, 77.83}};

  for (const auto& [model, paper_io, paper_red] : paper) {
    sim::Scenario sc(bench::paper_scenario(model, args.scale));
    const auto trace = sc.trace();
    auto fl = sim::adapt(sc.flstore());
    auto base = sim::adapt(sc.objstore_agg());
    const auto fl_run = sim::run_trace(*fl, sc.job(), trace,
                                       sc.config().duration_s,
                                       sc.config().round_interval_s);
    const auto base_run = sim::run_trace(*base, sc.job(), trace,
                                         sc.config().duration_s,
                                         sc.config().round_interval_s);
    const auto fl_by = sim::by_workload(fl_run);
    const auto base_by = sim::by_workload(base_run);

    const double vm_rate = 0.922 / 3600.0;
    Table table({"application", "ObjStore comm ($)", "ObjStore comp ($)",
                 "FLStore ($)"});
    for (const auto type : fed::paper_workloads()) {
      const auto& b = base_by.at(type);
      const auto& f = fl_by.at(type);
      table.add_row({fed::paper_label(type),
                     fmt(b.comm.sum() * vm_rate, 2),
                     fmt(b.comp.sum() * vm_rate, 3), fmt(f.cost.sum(), 4)});
    }
    std::printf("\n-- %s --\n%s", bench::panel_label(model).c_str(),
                table.to_string().c_str());

    const double io_share = base_run.total_comm_s() /
                            (base_run.total_comm_s() + base_run.total_comp_s()) *
                            100.0;
    report.headline(std::string("I/O share of baseline total / ") + model,
                    paper_io, io_share, "%");
    report.headline(std::string("avg cost reduction / ") + model, paper_red,
                    percent_reduction(base_run.total_serving_usd(),
                                      fl_run.total_serving_usd()),
                    "%");
  }
  report.write(args);
  return 0;
}
