// Figure 10: overall per-round FL cost with and without FLStore (training
// cost is untouched; the non-training share collapses).
//
// Paper examples: debugging $0.099 -> $0.004 (96.4 % reduction of the
// workload share), inference $0.097 -> $0.004 (96 %); per-application total
// reductions annotated between 42 % and 96 %.
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main() {
  bench::banner("Figure 10",
                "Overall per-round FL cost with and without FLStore");

  sim::ScenarioConfig cfg = bench::paper_scenario("efficientnet_v2_s", 0.2);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();

  auto base = sim::adapt(sc.objstore_agg());
  const auto base_run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                       cfg.round_interval_s);
  auto fl = sim::adapt(sc.flstore());
  const auto fl_run = sim::run_trace(*fl, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto base_by = sim::by_workload(base_run);
  const auto fl_by = sim::by_workload(fl_run);

  double train_cost = 0.0;
  constexpr int kSampleRounds = 20;
  for (RoundId r = 0; r < kSampleRounds; ++r) {
    train_cost += sim::training_profile(sc.job(), r * 5).vm_cost_usd;
  }
  train_cost /= kSampleRounds;

  Table table({"application", "without FLStore ($/round)",
               "with FLStore ($/round)", "reduction"});
  double debugging_before = 0.0, debugging_after = 0.0;
  for (const auto type : fed::paper_workloads()) {
    const double before = train_cost + base_by.at(type).cost.mean();
    const double after = train_cost + fl_by.at(type).cost.mean();
    if (type == fed::WorkloadType::kDebugging) {
      debugging_before = base_by.at(type).cost.mean();
      debugging_after = fl_by.at(type).cost.mean();
    }
    table.add_row({fed::paper_label(type), fmt_usd(before), fmt_usd(after),
                   fmt_pct(percent_reduction(before, after))});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("debugging workload cost before", 0.099,
                      debugging_before, "$");
  sim::print_headline("debugging workload cost after", 0.004,
                      debugging_after, "$");
  sim::print_headline("debugging workload cost reduction", 96.4,
                      percent_reduction(debugging_before, debugging_after),
                      "%");
  return 0;
}
