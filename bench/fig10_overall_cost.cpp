// Figure 10: overall per-round FL cost with and without FLStore (training
// cost is untouched; the non-training share collapses).
//
// Paper examples: debugging $0.099 -> $0.004 (96.4 % reduction of the
// workload share), inference $0.097 -> $0.004 (96 %); per-application total
// reductions annotated between 42 % and 96 %.
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig10");
  bench::banner("Figure 10",
                "Overall per-round FL cost with and without FLStore");

  sim::ScenarioConfig cfg =
      bench::paper_scenario("efficientnet_v2_s", 0.2 * args.scale);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();

  auto base = sim::adapt(sc.objstore_agg());
  const auto base_run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                       cfg.round_interval_s);
  auto fl = sim::adapt(sc.flstore());
  const auto fl_run = sim::run_trace(*fl, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto base_by = sim::by_workload(base_run);
  const auto fl_by = sim::by_workload(fl_run);

  double train_cost = 0.0;
  constexpr int kSampleRounds = 20;
  for (RoundId r = 0; r < kSampleRounds; ++r) {
    train_cost += sim::training_profile(sc.job(), r * 5).vm_cost_usd;
  }
  train_cost /= kSampleRounds;

  Table table({"application", "without FLStore ($/round)",
               "with FLStore ($/round)", "reduction"});
  double debugging_before = 0.0, debugging_after = 0.0;
  for (const auto type : fed::paper_workloads()) {
    const double before = train_cost + base_by.at(type).cost.mean();
    const double after = train_cost + fl_by.at(type).cost.mean();
    if (type == fed::WorkloadType::kDebugging) {
      debugging_before = base_by.at(type).cost.mean();
      debugging_after = fl_by.at(type).cost.mean();
    }
    table.add_row({fed::paper_label(type), fmt_usd(before), fmt_usd(after),
                   fmt_pct(percent_reduction(before, after))});
  }
  std::printf("%s", table.to_string().c_str());

  // Backend sweep: the non-training cost share per round for each cold
  // backend, one code path. Requests-per-round converts $/request into the
  // figure's $/round share.
  const auto rows = bench::print_backend_sweep(sc, trace, report);
  const double req_per_round =
      static_cast<double>(cfg.total_requests) /
      static_cast<double>(cfg.rounds > 0 ? cfg.rounds : 1);
  Table round_share({"cold backend", "non-training $/round",
                     "total $/round (with training)"});
  for (const auto& row : rows) {
    const double share = bench::sweep_mean_cost(row) * req_per_round;
    round_share.add_row({row.label, fmt_usd(share),
                         fmt_usd(train_cost + share)});
    report.add("round_share/" + row.label, share, "$");
  }
  std::printf("\n%s", round_share.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("debugging workload cost before", 0.099, debugging_before,
                  "$");
  report.headline("debugging workload cost after", 0.004, debugging_after,
                  "$");
  report.headline("debugging workload cost reduction", 96.4,
                  percent_reduction(debugging_before, debugging_after), "%");
  report.write(args);
  return 0;
}
