// Table 2: cache-policy hit/miss counts on the simulated single-family
// traces (FL jobs with 10 clients per round from a pool of 250 over 2000
// rounds).
//
// Paper numbers:
//   P2 family: FLStore 19999 hits / 1 miss of 20000; FIFO/LFU/LRU 0 hits.
//   P3 family: FLStore    63 hits / 1 miss of    64; FIFO/LFU/LRU 0 hits.
//   P4 family: FLStore 20000 hits / 0 miss of 20000; FIFO/LFU/LRU 0 hits.
#include "bench_common.hpp"

#include "core/flstore.hpp"
#include "fed/trace.hpp"

using namespace flstore;

namespace {

struct Row {
  std::string family;
  std::string policy;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Row run_policy(const std::string& family, core::PolicyMode mode,
               const fed::FLJob& job, ObjectStore& cold,
               const std::vector<fed::NonTrainingRequest>& trace,
               bool during_training) {
  core::FLStoreConfig cfg;
  cfg.policy.mode = mode;
  // Traditional policies get a bounded demand cache (two rounds' worth),
  // like the FLStore variants of Fig 11.
  if (!core::is_tailored(mode)) {
    cfg.cache_capacity = 22ULL * job.model().object_bytes;
  }
  core::FLStore store(cfg, job, cold);

  Row row{family, core::to_string(mode), 0, 0};
  if (during_training) {
    // P4 trace runs while training streams rounds in (write-allocation is
    // what produces its 100 % hit rate).
    auto adapter = sim::adapt(store);
    const auto run = sim::run_trace(*adapter, const_cast<fed::FLJob&>(job),
                                    trace, static_cast<double>(trace.size()),
                                    1.0);
    row.hits = run.total_hits();
    row.misses = run.total_misses();
  } else {
    // P2/P3 traces replay post-hoc against a cold cache (the persistent
    // store already holds the full history).
    double t = 1.0e6;
    for (const auto& req : trace) {
      const auto res = store.serve(req, t);
      row.hits += res.hits;
      row.misses += res.misses;
      t += 10.0;
    }
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("Table 2", "Cache policy hits/misses across workload families");

  fed::FLJobConfig job_cfg;
  job_cfg.model = "efficientnet_v2_s";
  job_cfg.pool_size = 250;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 2000;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  {
    // Populate the persistent store once (traditional-mode ingest caches
    // nothing, so this only writes the cold tier).
    core::FLStoreConfig filler_cfg;
    filler_cfg.policy.mode = core::PolicyMode::kLru;
    core::FLStore filler(filler_cfg, job, cold);
    for (RoundId r = 0; r < job_cfg.rounds; ++r) {
      filler.ingest_round(job.make_round(r), static_cast<double>(r));
    }
  }

  const auto p2_trace =
      fed::table2_p2_trace(fed::WorkloadType::kMaliciousFilter, 2000);
  const auto p3_trace =
      fed::table2_p3_trace(job.participants(0).front(), 64, job);
  const auto p4_trace = fed::table2_p4_trace(2000);

  const std::vector<core::PolicyMode> modes = {
      core::PolicyMode::kTailored, core::PolicyMode::kFifo,
      core::PolicyMode::kLfu, core::PolicyMode::kLru};

  Table table({"workload family", "policy", "hits", "misses", "total",
               "hit %"});
  auto emit = [&table](const Row& row) {
    const auto total = row.hits + row.misses;
    table.add_row({row.family, row.policy, std::to_string(row.hits),
                   std::to_string(row.misses), std::to_string(total),
                   fmt(total == 0 ? 0.0
                                  : static_cast<double>(row.hits) /
                                        static_cast<double>(total),
                       2)});
  };

  Row fl_p2, fl_p3, fl_p4;
  for (const auto mode : modes) {
    auto row = run_policy("P2 (per-round apps)", mode, job, cold, p2_trace,
                          false);
    if (mode == core::PolicyMode::kTailored) fl_p2 = row;
    emit(row);
  }
  for (const auto mode : modes) {
    auto row = run_policy("P3 (across-round apps)", mode, job, cold, p3_trace,
                          false);
    if (mode == core::PolicyMode::kTailored) fl_p3 = row;
    emit(row);
  }
  for (const auto mode : modes) {
    auto row = run_policy("P4 (metadata apps)", mode, job, cold, p4_trace,
                          true);
    if (mode == core::PolicyMode::kTailored) fl_p4 = row;
    emit(row);
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("P2 FLStore hits", 19999,
                      static_cast<double>(fl_p2.hits), "");
  sim::print_headline("P2 FLStore misses", 1,
                      static_cast<double>(fl_p2.misses), "");
  sim::print_headline("P3 FLStore hits", 63, static_cast<double>(fl_p3.hits),
                      "");
  sim::print_headline("P3 FLStore misses", 1,
                      static_cast<double>(fl_p3.misses), "");
  sim::print_headline("P4 FLStore hits", 20000,
                      static_cast<double>(fl_p4.hits), "");
  sim::print_headline("P4 FLStore misses", 0,
                      static_cast<double>(fl_p4.misses), "");
  return 0;
}
