// Table 2: cache-policy hit/miss counts on the simulated single-family
// traces (FL jobs with 10 clients per round from a pool of 250 over 2000
// rounds).
//
// Paper numbers:
//   P2 family: FLStore 19999 hits / 1 miss of 20000; FIFO/LFU/LRU 0 hits.
//   P3 family: FLStore    63 hits / 1 miss of    64; FIFO/LFU/LRU 0 hits.
//   P4 family: FLStore 20000 hits / 0 miss of 20000; FIFO/LFU/LRU 0 hits.
#include "bench_common.hpp"

#include <chrono>
#include <limits>
#include <unordered_map>

#include "core/flstore.hpp"
#include "fed/trace.hpp"

using namespace flstore;

namespace {

struct Row {
  std::string family;
  std::string policy;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Row run_policy(const std::string& family, core::PolicyMode mode,
               const fed::FLJob& job, ObjectStore& cold,
               const std::vector<fed::NonTrainingRequest>& trace,
               bool during_training) {
  core::FLStoreConfig cfg;
  cfg.policy.mode = mode;
  // Traditional policies get a bounded demand cache (two rounds' worth),
  // like the FLStore variants of Fig 11.
  if (!core::is_tailored(mode)) {
    cfg.cache_capacity = 22ULL * job.model().object_bytes;
  }
  core::FLStore store(cfg, job, cold);

  Row row{family, core::to_string(mode), 0, 0};
  if (during_training) {
    // P4 trace runs while training streams rounds in (write-allocation is
    // what produces its 100 % hit rate).
    auto adapter = sim::adapt(store);
    const auto run = sim::run_trace(*adapter, const_cast<fed::FLJob&>(job),
                                    trace, static_cast<double>(trace.size()),
                                    1.0);
    row.hits = run.total_hits();
    row.misses = run.total_misses();
  } else {
    // P2/P3 traces replay post-hoc against a cold cache (the persistent
    // store already holds the full history).
    double t = 1.0e6;
    for (const auto& req : trace) {
      const auto res = store.serve(req, t);
      row.hits += res.hits;
      row.misses += res.misses;
      t += 10.0;
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Eviction-cost microbench: victims/sec of the O(log n) eviction index vs
// the pre-refactor O(n) full-index scan, at 10^5 and 10^6 resident entries.

struct EvictionCostRow {
  double engine_vps = 0.0;  ///< victims/sec through CacheEngine
  double oracle_vps = 0.0;  ///< victims/sec of the O(n) scan reference
};

MetadataKey bench_key(std::size_t i) {
  // Spread entries over rounds so round-aware mode exercises its ordering.
  return MetadataKey::metrics(static_cast<ClientId>(i % 100000),
                              static_cast<RoundId>(i / 100000));
}

EvictionCostRow eviction_cost(core::PolicyMode order, bool round_aware,
                              std::size_t n, std::size_t victims) {
  // flstore-lint: allow(wall-clock) -- real CPU microbenchmark: victims/sec of actual eviction work, not simulated time
  using clock = std::chrono::steady_clock;
  EvictionCostRow row;

  // Engine path: fill to exactly `capacity`, then every further insert
  // evicts one victim (insert + evict is the steady-state eviction cost).
  {
    FunctionRuntime runtime(FunctionRuntime::Config{}, PricingCatalog::aws());
    core::ServerlessCachePool pool(
        core::ServerlessCachePool::Config{4 * units::GB, 1, 0.5, 0}, runtime);
    core::CacheEngine engine(
        core::CacheEngine::Config{n * units::KB, order, round_aware}, pool);
    const auto blob = std::make_shared<const Blob>(Blob{1});
    for (std::size_t i = 0; i < n; ++i) {
      (void)engine.cache_object(bench_key(i), blob, units::KB, 0.0);
    }
    const auto start = clock::now();
    for (std::size_t i = 0; i < victims; ++i) {
      (void)engine.cache_object(bench_key(n + i), blob, units::KB, 1.0);
    }
    const auto elapsed = std::chrono::duration<double>(clock::now() - start);
    row.engine_vps =
        static_cast<double>(engine.forced_evictions()) / elapsed.count();
  }

  // Reference path: the old evict_victim — a full scan of a flat index per
  // victim (no pool traffic at all, so this under-counts the old cost).
  {
    struct Meta {
      std::uint64_t last_access = 0, inserted = 0, accesses = 0;
      RoundId round = 0;
    };
    std::unordered_map<MetadataKey, Meta, MetadataKeyHash> index;
    index.reserve(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      index.emplace(bench_key(i),
                    Meta{i, i, 1, static_cast<RoundId>(i / 100000)});
    }
    const auto start = clock::now();
    for (std::size_t i = 0; i < victims; ++i) {
      auto victim = index.begin();
      auto best = std::numeric_limits<std::uint64_t>::max();
      auto best_round = std::numeric_limits<RoundId>::max();
      for (auto it = index.begin(); it != index.end(); ++it) {
        if (round_aware) {
          if (it->second.round < best_round ||
              (it->second.round == best_round &&
               it->second.last_access < best)) {
            best_round = it->second.round;
            best = it->second.last_access;
            victim = it;
          }
          continue;
        }
        const auto s = order == core::PolicyMode::kLfu ? it->second.accesses
                       : order == core::PolicyMode::kFifo
                           ? it->second.inserted
                           : it->second.last_access;
        if (s < best) {
          best = s;
          victim = it;
        }
      }
      index.erase(victim);
      index.emplace(bench_key(n + i),
                    Meta{n + i, n + i, 1,
                         static_cast<RoundId>((n + i) / 100000)});
    }
    const auto elapsed = std::chrono::duration<double>(clock::now() - start);
    row.oracle_vps = static_cast<double>(victims) / elapsed.count();
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("Table 2", "Cache policy hits/misses across workload families");

  fed::FLJobConfig job_cfg;
  job_cfg.model = "efficientnet_v2_s";
  job_cfg.pool_size = 250;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 2000;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  {
    // Populate the persistent store once (traditional-mode ingest caches
    // nothing, so this only writes the cold tier).
    core::FLStoreConfig filler_cfg;
    filler_cfg.policy.mode = core::PolicyMode::kLru;
    core::FLStore filler(filler_cfg, job, cold);
    for (RoundId r = 0; r < job_cfg.rounds; ++r) {
      filler.ingest_round(job.make_round(r), static_cast<double>(r));
    }
  }

  const auto p2_trace =
      fed::table2_p2_trace(fed::WorkloadType::kMaliciousFilter, 2000);
  const auto p3_trace =
      fed::table2_p3_trace(job.participants(0).front(), 64, job);
  const auto p4_trace = fed::table2_p4_trace(2000);

  const std::vector<core::PolicyMode> modes = {
      core::PolicyMode::kTailored, core::PolicyMode::kFifo,
      core::PolicyMode::kLfu, core::PolicyMode::kLru};

  Table table({"workload family", "policy", "hits", "misses", "total",
               "hit %"});
  auto emit = [&table](const Row& row) {
    const auto total = row.hits + row.misses;
    table.add_row({row.family, row.policy, std::to_string(row.hits),
                   std::to_string(row.misses), std::to_string(total),
                   fmt(total == 0 ? 0.0
                                  : static_cast<double>(row.hits) /
                                        static_cast<double>(total),
                       2)});
  };

  Row fl_p2, fl_p3, fl_p4;
  for (const auto mode : modes) {
    auto row = run_policy("P2 (per-round apps)", mode, job, cold, p2_trace,
                          false);
    if (mode == core::PolicyMode::kTailored) fl_p2 = row;
    emit(row);
  }
  for (const auto mode : modes) {
    auto row = run_policy("P3 (across-round apps)", mode, job, cold, p3_trace,
                          false);
    if (mode == core::PolicyMode::kTailored) fl_p3 = row;
    emit(row);
  }
  for (const auto mode : modes) {
    auto row = run_policy("P4 (metadata apps)", mode, job, cold, p4_trace,
                          true);
    if (mode == core::PolicyMode::kTailored) fl_p4 = row;
    emit(row);
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("P2 FLStore hits", 19999,
                      static_cast<double>(fl_p2.hits), "");
  sim::print_headline("P2 FLStore misses", 1,
                      static_cast<double>(fl_p2.misses), "");
  sim::print_headline("P3 FLStore hits", 63, static_cast<double>(fl_p3.hits),
                      "");
  sim::print_headline("P3 FLStore misses", 1,
                      static_cast<double>(fl_p3.misses), "");
  sim::print_headline("P4 FLStore hits", 20000,
                      static_cast<double>(fl_p4.hits), "");
  sim::print_headline("P4 FLStore misses", 0,
                      static_cast<double>(fl_p4.misses), "");

  // ---- eviction-cost column ----------------------------------------------
  bench::note(
      "\nEviction engine cost: victims/sec through the O(log n) ordering\n"
      "index vs the pre-refactor O(n) full-index scan (scan timings exclude\n"
      "pool traffic, so the speedup is a lower bound).");
  Table evc({"entries", "mode", "victims/s (engine)", "victims/s (O(n) scan)",
             "speedup"});
  struct ModeRow {
    const char* name;
    core::PolicyMode order;
    bool round_aware;
  };
  const ModeRow evc_modes[] = {
      {"LRU", core::PolicyMode::kLru, false},
      {"LFU", core::PolicyMode::kLfu, false},
      {"FIFO", core::PolicyMode::kFifo, false},
      {"round-aware", core::PolicyMode::kLru, true},
  };
  double speedup_1e5 = 0.0;
  for (const std::size_t n : {std::size_t{100000}, std::size_t{1000000}}) {
    for (const auto& m : evc_modes) {
      // At 10^6 entries the O(n) scan is ~100 us/victim; two modes keep the
      // bench under a minute while still showing the scaling cliff.
      if (n == 1000000 && m.order == core::PolicyMode::kLfu) continue;
      if (n == 1000000 && m.order == core::PolicyMode::kFifo) continue;
      const auto victims = n == 1000000 ? std::size_t{100} : std::size_t{400};
      const auto row = eviction_cost(m.order, m.round_aware, n, victims);
      const auto speedup = row.engine_vps / row.oracle_vps;
      if (n == 100000 && m.order == core::PolicyMode::kLru &&
          !m.round_aware) {
        speedup_1e5 = speedup;
      }
      evc.add_row({std::to_string(n), m.name, fmt(row.engine_vps, 0),
                   fmt(row.oracle_vps, 0), fmt(speedup, 1) + "x"});
    }
  }
  std::printf("%s", evc.to_string().c_str());
  sim::print_headline("eviction speedup at 1e5 entries (>= 10x)", 10.0,
                      speedup_1e5, "x");

  // ---- partitioned vs unpartitioned --------------------------------------
  bench::note(
      "\nPer-class partitions under one capacity-squeezed mixed-workload\n"
      "cache (tailored policies, round-aware eviction). Unpartitioned, the\n"
      "P2 round churn (hundreds of MB per round) washes out the small P1\n"
      "aggregate and P4 metadata windows; with per-class budgets (derived\n"
      "from the unpartitioned run's ledger via rebalance_class_budgets)\n"
      "each class evicts only against itself.");
  fed::FLJobConfig mixed_cfg;
  mixed_cfg.model = "efficientnet_v2_s";
  mixed_cfg.pool_size = 100;
  mixed_cfg.clients_per_round = 10;
  mixed_cfg.rounds = 300;
  fed::FLJob mixed_job(mixed_cfg);
  fed::TraceConfig trace_cfg;
  trace_cfg.duration_s = 300.0;
  trace_cfg.total_requests = 900;
  trace_cfg.round_interval_s = 1.0;
  const auto mixed_trace = fed::generate_trace(trace_cfg, mixed_job);
  const auto capacity = 12ULL * mixed_job.model().object_bytes;

  std::array<units::Bytes, fed::kPolicyClassCount> budgets{};
  Table part({"cache", "class", "hits", "misses", "hit %", "resident MB"});
  double hit_rate_plain = 0.0, hit_rate_part = 0.0;
  std::array<std::array<double, fed::kPolicyClassCount>, 2> class_rate{};
  for (const bool partitioned : {false, true}) {
    ObjectStore mixed_cold(sim::objstore_link(), PricingCatalog::aws());
    core::FLStoreConfig cfg;
    cfg.cache_capacity = capacity;
    if (partitioned) cfg.class_capacity = budgets;
    core::FLStore store(cfg, mixed_job, mixed_cold);
    auto adapter = sim::adapt(store);
    const auto run =
        sim::run_trace(*adapter, mixed_job, mixed_trace, trace_cfg.duration_s,
                       trace_cfg.round_interval_s);
    const auto label = partitioned ? "partitioned" : "unpartitioned";
    std::array<core::ClassDemand, fed::kPolicyClassCount> demand{};
    for (std::size_t c = 0; c < fed::kPolicyClassCount; ++c) {
      const auto& s = store.engine().class_stats(c);
      demand[c] = {s.hits, s.misses, s.bytes};
      const auto total = s.hits + s.misses;
      const auto rate = total == 0 ? 0.0
                                   : static_cast<double>(s.hits) /
                                         static_cast<double>(total);
      class_rate[partitioned ? 1 : 0][c] = rate;
      part.add_row({label, fed::to_string(static_cast<fed::PolicyClass>(c)),
                    std::to_string(s.hits), std::to_string(s.misses),
                    fmt(rate, 2), fmt(units::to_mb(s.bytes), 0)});
    }
    const auto hits = run.total_hits();
    const auto total = hits + run.total_misses();
    const auto rate = total == 0 ? 0.0
                                 : static_cast<double>(hits) /
                                       static_cast<double>(total);
    (partitioned ? hit_rate_part : hit_rate_plain) = rate;
    if (!partitioned) {
      // Floor of two model objects: enough for a class to hold a current
      // aggregate (P1) or a small window even when its weight rounds to 0.
      budgets = core::PolicyEngine::rebalance_class_budgets(
          demand, capacity, 2 * mixed_job.model().object_bytes);
    }
  }
  std::printf("%s", part.to_string().c_str());
  std::printf(
      "\n  overall hit rate: %.2f unpartitioned -> %.2f partitioned\n"
      "  per-class (unpartitioned -> partitioned): P1 %.2f -> %.2f, "
      "P3 %.2f -> %.2f, P4 %.2f -> %.2f\n"
      "  (the P2 churn class is sacrificed by design: its per-round working\n"
      "   set exceeds any budget, so the rebalancer keeps it at the floor)\n",
      hit_rate_plain, hit_rate_part, class_rate[0][0], class_rate[1][0],
      class_rate[0][2], class_rate[1][2], class_rate[0][3], class_rate[1][3]);
  return 0;
}
