// Figure 8: FLStore vs ObjStore-Agg per-request cost over the 50-hour
// trace — ten workloads, four models.
//
// Paper headlines: average cost reduction 88.23 %, maximum 99.78 %
// (Sched. with Cosine Similarity on MobileNet); average decrease $0.025
// per request, maximum $0.094.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig08");
  bench::banner("Figure 8",
                "FLStore vs ObjStore-Agg per-request cost ($), 50 h trace");

  double base_sum = 0.0, fl_sum = 0.0;
  std::size_t n = 0;
  double max_abs = 0.0, max_pct = 0.0;

  for (const auto& model : ModelZoo::evaluation_models()) {
    sim::Scenario sc(bench::paper_scenario(model, args.scale));
    const auto trace = sc.trace();
    auto fl = sim::adapt(sc.flstore());
    auto base = sim::adapt(sc.objstore_agg());
    const auto fl_run = sim::run_trace(*fl, sc.job(), trace,
                                       sc.config().duration_s,
                                       sc.config().round_interval_s);
    const auto base_run = sim::run_trace(*base, sc.job(), trace,
                                         sc.config().duration_s,
                                         sc.config().round_interval_s);
    const auto fl_by = sim::by_workload(fl_run);
    const auto base_by = sim::by_workload(base_run);

    Table table({"application", "ObjStore-Agg mean", "FLStore mean",
                 "reduction"});
    for (const auto type : fed::paper_workloads()) {
      const auto& b = base_by.at(type);
      const auto& f = fl_by.at(type);
      table.add_row({fed::paper_label(type), fmt_usd(b.cost.mean()),
                     fmt_usd(f.cost.mean()),
                     fmt_pct(percent_reduction(b.cost.mean(), f.cost.mean()))});
      base_sum += b.cost.sum();
      fl_sum += f.cost.sum();
      n += b.cost.size();
      for (std::size_t i = 0; i < b.cost.size(); ++i) {
        const double d = b.cost.values()[i] - f.cost.values()[i];
        max_abs = std::max(max_abs, d);
        if (b.cost.values()[i] > 0) {
          max_pct = std::max(max_pct, d / b.cost.values()[i] * 100.0);
        }
      }
    }
    std::printf("\n-- %s --\n%s", bench::panel_label(model).c_str(),
                table.to_string().c_str());
  }

  // Backend sweep: the cost side of the same one-code-path comparison.
  sim::Scenario sweep_sc(
      bench::paper_scenario("efficientnet_v2_s", 0.2 * args.scale));
  const auto sweep_trace = sweep_sc.trace();
  const auto rows = bench::print_backend_sweep(sweep_sc, sweep_trace, report);
  // Paper ordering over its three systems (the local-SSD extension row wins
  // raw serving $/req but pays provisioned idle — see the idle column).
  const bool cost_ordering =
      bench::sweep_mean_cost(rows[0]) < bench::sweep_mean_cost(rows[2]) &&
      bench::sweep_mean_cost(rows[2]) < bench::sweep_mean_cost(rows[1]);
  std::printf(
      "\n  paper ordering (serving cost): FLStore cache < cloud cache < "
      "object store — %s\n",
      cost_ordering ? "holds" : "VIOLATED");

  const double avg_base = base_sum / static_cast<double>(n);
  const double avg_fl = fl_sum / static_cast<double>(n);
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("avg per-request cost reduction", 88.23,
                  percent_reduction(avg_base, avg_fl), "%");
  report.headline("max per-request cost reduction", 99.78, max_pct, "%");
  report.headline("avg absolute cost decrease ($/request)", 0.025,
                  avg_base - avg_fl, "$");
  report.headline("max absolute cost decrease ($/request)", 0.094, max_abs,
                  "$");
  report.add("backend_cost_ordering_holds", cost_ordering ? 1.0 : 0.0);
  report.write(args);
  return 0;
}
