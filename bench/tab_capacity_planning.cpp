// §4.4 capacity-planning example: caching *all* FL metadata vs the tailored
// working set.
//
// Paper: "an FL job with 1000 clients and 1000 training rounds using the
// EfficientNet model would require 79 TBs of memory across 10098 Lambda
// functions, costing $10.2 per hour ... With FLStore's tailored policies,
// only 1.2 GB is consumed from just two Lambda functions, reducing costs to
// $0.001 per hour".
#include "bench_common.hpp"

#include "core/capacity_planner.hpp"

using namespace flstore;

int main() {
  bench::banner("§4.4 example", "Capacity planning: full cache vs tailored");

  core::CapacityRequest req;
  req.model = &ModelZoo::instance().get("efficientnet_v2_s");
  req.clients_per_round = 1000;
  req.rounds = 1000;
  const auto full = core::plan_full_cache(req);

  core::CapacityRequest tailored_req = req;
  tailored_req.clients_per_round = 10;  // the selected training cohort
  const auto tailored = core::plan_tailored_cache(tailored_req);

  Table table({"plan", "metadata held", "functions", "warm-keeping $/h"});
  table.add_row({"cache everything", fmt_bytes(units::to_mb(full.total_bytes)),
                 std::to_string(full.functions),
                 fmt(full.keepalive_usd_per_hour, 2)});
  table.add_row({"FLStore tailored policies",
                 fmt_bytes(units::to_mb(tailored.total_bytes)),
                 std::to_string(tailored.functions),
                 fmt(tailored.keepalive_usd_per_hour, 4)});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("full-cache footprint", 79.0,
                      units::to_gb(full.total_bytes) / 1000.0, "TB");
  sim::print_headline("full-cache functions", 10098.0,
                      static_cast<double>(full.functions), "");
  sim::print_headline("full-cache warm-keeping cost", 10.2,
                      full.keepalive_usd_per_hour, "$/h");
  sim::print_headline("tailored footprint", 1.2,
                      units::to_gb(tailored.total_bytes), "GB");
  sim::print_headline("tailored functions", 2.0,
                      static_cast<double>(tailored.functions), "");
  sim::print_headline("tailored warm-keeping cost", 0.001,
                      tailored.keepalive_usd_per_hour, "$/h");
  return 0;
}
