// Figure 11: FLStore's tailored policies vs traditional ones hosted in the
// same serverless cache — FLStore, FLStore-limited (half capacity),
// FLStore-Random, FLStore-LRU, FLStore-FIFO. Latency (left) and cost
// (right) per request over the 50-hour trace.
//
// Paper headline (§5.4): tailored policies cut the debugging workload by
// 97.15 % (380 s) and ~$0.1 per request against the traditional variants.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig11");
  bench::banner("Figure 11",
                "Tailored vs traditional caching policies in FLStore");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.5 * args.scale);
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();

  struct Variant {
    std::string label;
    std::unique_ptr<core::FLStore> store;
  };
  // FLStore's tailored working set: two rounds of updates + aggregates +
  // metadata windows, plus headroom for in-flight prefetches (the measured
  // steady-state footprint). FLStore-limited runs at half of this.
  const auto working_set =
      (2ULL * static_cast<units::Bytes>(cfg.clients_per_round) + 4ULL) *
      sc.job().model().object_bytes;

  // Traditional variants get the same capacity FLStore's tailored policies
  // actually use; FLStore-limited gets half of it (§5.4).
  std::vector<Variant> variants;
  variants.push_back({"FLStore-LRU",
                      sc.make_flstore_variant(core::PolicyMode::kLru,
                                              working_set)});
  variants.push_back({"FLStore-FIFO",
                      sc.make_flstore_variant(core::PolicyMode::kFifo,
                                              working_set)});
  variants.push_back({"FLStore-Random",
                      sc.make_flstore_variant(core::PolicyMode::kTailoredRandom)});
  variants.push_back({"FLStore-limited",
                      sc.make_flstore_variant(core::PolicyMode::kTailored,
                                              working_set / 2)});
  variants.push_back({"FLStore",
                      sc.make_flstore_variant(core::PolicyMode::kTailored)});

  std::map<std::string, std::map<fed::WorkloadType, sim::WorkloadStats>> all;
  for (auto& v : variants) {
    auto adapter = sim::adapt(*v.store);
    const auto run = sim::run_trace(*adapter, sc.job(), trace, cfg.duration_s,
                                    cfg.round_interval_s);
    all[v.label] = sim::by_workload(run);
  }

  Table lat({"application", "LRU (s)", "FIFO (s)", "Random (s)",
             "limited (s)", "FLStore (s)"});
  Table cost({"application", "LRU ($)", "FIFO ($)", "Random ($)",
              "limited ($)", "FLStore ($)"});
  for (const auto type : fed::paper_workloads()) {
    auto cell_lat = [&](const char* label) {
      return fmt(all[label].at(type).latency.mean(), 2);
    };
    auto cell_cost = [&](const char* label) {
      return fmt_usd(all[label].at(type).cost.mean());
    };
    lat.add_row({fed::paper_label(type), cell_lat("FLStore-LRU"),
                 cell_lat("FLStore-FIFO"), cell_lat("FLStore-Random"),
                 cell_lat("FLStore-limited"), cell_lat("FLStore")});
    cost.add_row({fed::paper_label(type), cell_cost("FLStore-LRU"),
                  cell_cost("FLStore-FIFO"), cell_cost("FLStore-Random"),
                  cell_cost("FLStore-limited"), cell_cost("FLStore")});
  }
  std::printf("\nPer-request latency:\n%s", lat.to_string().c_str());
  std::printf("\nPer-request cost:\n%s", cost.to_string().c_str());

  const auto dbg = fed::WorkloadType::kDebugging;
  const double dbg_lru = all["FLStore-LRU"].at(dbg).latency.mean();
  const double dbg_fl = all["FLStore"].at(dbg).latency.mean();
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("debugging latency reduction vs traditional", 97.15,
                  percent_reduction(dbg_lru, dbg_fl), "%");
  report.headline("debugging absolute reduction", 380.0, dbg_lru - dbg_fl,
                  "s");
  bench::note(
      "Shape check: FLStore <= FLStore-limited << Random < LRU/FIFO on the\n"
      "iterative workloads; even FLStore-limited beats every traditional\n"
      "policy, as in the paper.");
  report.write(args);
  return 0;
}
