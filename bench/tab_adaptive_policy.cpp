// Future-work extension (§4.4 / Appendix D): adaptive policy selection for
// workloads the Table-1 taxonomy does not know. An epsilon-greedy bandit
// over the four policy classes, rewarded by observed hit rate, must
// converge to the class a taxonomy-aware FLStore would have picked.
//
// Environment: an "unknown" across-round tracking workload (ground truth:
// P3). We replay its trace once per candidate class to get the achievable
// hit rates, then let the bandit learn online.
#include "bench_common.hpp"

#include "core/adaptive_policy.hpp"
#include "core/flstore.hpp"
#include "fed/trace.hpp"

using namespace flstore;

int main() {
  bench::banner("Extension", "Adaptive policy selection for unknown workloads");

  fed::FLJobConfig job_cfg;
  job_cfg.model = "resnet18";
  job_cfg.pool_size = 100;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 400;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  {
    core::FLStoreConfig filler_cfg;
    filler_cfg.policy.mode = core::PolicyMode::kLru;
    core::FLStore filler(filler_cfg, job, cold);
    for (RoundId r = 0; r < job_cfg.rounds; ++r) {
      filler.ingest_round(job.make_round(r), static_cast<double>(r));
    }
  }

  // The unknown workload: provenance-style per-client tracking.
  const auto client = job.participants(0).front();
  const auto trace = fed::table2_p3_trace(client, 60, job);

  // Achievable hit rate per forced policy class (post-hoc replay).
  Table table({"forced policy class", "hits", "misses", "hit rate"});
  std::array<double, 4> achievable{};
  for (int c = 0; c < 4; ++c) {
    core::FLStoreConfig cfg;
    cfg.policy.mode = core::PolicyMode::kTailoredStatic;
    cfg.policy.static_class = static_cast<fed::PolicyClass>(c);
    core::FLStore store(cfg, job, cold);
    std::uint64_t hits = 0, misses = 0;
    double t = 1e6;
    for (const auto& req : trace) {
      const auto res = store.serve(req, t);
      hits += res.hits;
      misses += res.misses;
      t += 10.0;
    }
    achievable[static_cast<std::size_t>(c)] =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
    const char* names[] = {"P1", "P2", "P3", "P4"};
    table.add_row({names[c], std::to_string(hits), std::to_string(misses),
                   fmt(achievable[static_cast<std::size_t>(c)], 2)});
  }
  std::printf("%s", table.to_string().c_str());

  // Online learning: the bandit pulls a class per request batch and gets
  // the class's achievable hit rate (plus noise) as reward.
  core::AdaptivePolicySelector selector;
  Rng noise(3);
  for (int round = 0; round < 300; ++round) {
    const auto cls = selector.choose();
    const double reward = std::clamp(
        achievable[static_cast<std::size_t>(cls)] + noise.normal(0.0, 0.05),
        0.0, 1.0);
    selector.report(cls, reward);
  }

  const char* names[] = {"P1", "P2", "P3", "P4"};
  std::printf("\nBandit verdict after 300 requests: %s (pulls: ",
              names[static_cast<int>(selector.best())]);
  for (int c = 0; c < 4; ++c) {
    std::printf("%s=%llu ", names[c],
                static_cast<unsigned long long>(
                    selector.pulls(static_cast<fed::PolicyClass>(c))));
  }
  std::printf(")\n");
  sim::print_headline("learned class matches taxonomy (P3=2)", 2.0,
                      static_cast<double>(selector.best()), "");
  return selector.best() == fed::PolicyClass::kP3 ? 0 : 1;
}
