// Figure 12 (Appendix A.1): FLStore scalability — bursts of 1..10 parallel
// requests against 5 cached parallel function instances, EfficientNet.
//
// Paper headlines: latency and cost are flat while parallel requests <= 5
// (e.g. 1.05 s Malicious Filtering, 6.067 s Clustering averages), rise only
// past the cached-function count, and scaling more functions restores them.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig12");
  bench::banner("Figure 12",
                "Latency/cost vs parallel requests (5 cached functions)");

  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kMaliciousFilter, fed::WorkloadType::kCosineSimilarity,
      fed::WorkloadType::kSchedulingCluster, fed::WorkloadType::kClustering,
      fed::WorkloadType::kInference};
  constexpr int kCachedFunctions = 5;

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.05 * args.scale);
  // The burst targets the round ingested at t=200s (interval 10s) — the
  // figure's structure; --scale must not shrink the job below it.
  cfg.rounds = std::max<RoundId>(cfg.rounds, 21);
  sim::Scenario sc(cfg);

  Table lat({"parallel requests", "Malicious Filt. (s)", "Cosine sim. (s)",
             "Sched. clust. (s)", "Clustering (s)", "Inference (s)"});
  Table cost({"parallel requests", "Malicious Filt. ($)", "Cosine sim. ($)",
              "Sched. clust. ($)", "Clustering ($)", "Inference ($)"});

  double flat_lat_at_5 = 0.0, lat_at_10 = 0.0;

  for (int parallel = 1; parallel <= 10; ++parallel) {
    std::vector<std::string> lat_row{std::to_string(parallel)};
    std::vector<std::string> cost_row{std::to_string(parallel)};
    for (const auto type : workloads) {
      // Fresh store per cell so warm-up is identical everywhere; the runner
      // ingests training rounds on its own clock, and the burst targets the
      // round that is newest (and therefore cached) at burst time.
      auto store = sc.make_flstore_variant(core::PolicyMode::kTailored);
      constexpr double kBurstAt = 200.0;
      constexpr double kRoundInterval = 10.0;
      const auto target = static_cast<RoundId>(kBurstAt / kRoundInterval);
      // Burst of `parallel` identical requests at t0 over `kCachedFunctions`
      // server slots (replica copies of the cached function).
      std::vector<fed::NonTrainingRequest> burst;
      for (int i = 0; i < parallel; ++i) {
        burst.push_back(fed::NonTrainingRequest{
            static_cast<RequestId>(i + 1), type, target, kNoClient, kBurstAt});
      }
      auto adapter = sim::adapt(*store);
      sim::RunnerOptions opts;
      opts.servers = kCachedFunctions;
      const auto run = sim::run_trace(*adapter, sc.job(), burst, kBurstAt + 100.0,
                                      kRoundInterval, opts);
      SampleSet latency, usd;
      for (const auto& rec : run.records) {
        latency.add(rec.latency_s());
        usd.add(rec.cost_usd);
      }
      lat_row.push_back(fmt(latency.mean(), 2));
      cost_row.push_back(fmt_usd(usd.mean()));
      if (type == fed::WorkloadType::kMaliciousFilter) {
        if (parallel == 5) flat_lat_at_5 = latency.mean();
        if (parallel == 10) lat_at_10 = latency.mean();
      }
    }
    lat.add_row(lat_row);
    cost.add_row(cost_row);
  }
  std::printf("\nPer-request latency:\n%s", lat.to_string().c_str());
  std::printf("\nPer-request cost:\n%s", cost.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("malicious-filter latency at <=5 parallel", 1.05,
                  flat_lat_at_5, "s");
  report.headline("latency growth factor at 10 parallel", 2.0,
                  lat_at_10 / flat_lat_at_5, "x");
  bench::note(
      "Shape check: flat latency until requests exceed the cached function\n"
      "count, then queueing doubles it by 10 parallel requests.");
  report.write(args);
  return 0;
}
