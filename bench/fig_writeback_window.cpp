// Write-back dirty-window sweep (repo extension; ROADMAP "write-back
// TieredColdStore under the serving plane"): age/byte flush thresholds ×
// offered ingest QPS → p99 read latency, cold-tier fees, and peak
// bytes-at-risk.
//
// The setup is a write-back TieredColdStore — a fixed 1-node cloud cache
// over a throttle-bounded object store (the provisioned-IOPS cliff: 8
// admissions/s sustained) — fed by a synthetic ingest stream, with reads of
// uniformly random past objects interleaved. Write-through pays one deep
// PUT admission per ingested object, so past the throttle's sustained rate
// the token bucket goes into debt and every read that misses the cache
// queues behind it. Write-back parks writes in the cache and the
// FlushScheduler drains them in batched slices (one admission per slice),
// so the deep tier's tokens stay available to reads — while the scheduler's
// age/byte thresholds keep the crash-consistency window bounded and its
// ledger prices what remains at risk.
//
// The round-boundary-only cadence (the legacy explicit-flush behaviour) is
// the cautionary row: at high ingest QPS its dirty window outgrows the
// cache and dirty objects get evicted before any flush — acked writes lost
// (dropped_dirty), which is exactly why the scheduler exists.
//
// Verdicts (also in the JSON): scheduled cells keep oldest-dirty age <= the
// age threshold and peak dirty bytes <= the byte threshold, lose nothing,
// and write-back p99 read latency beats write-through at equal ingest QPS.
#include <memory>

#include "backend/cloud_cache_backend.hpp"
#include "backend/flush_scheduler.hpp"
#include "backend/tiered_cold_store.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace flstore;

namespace {

constexpr units::Bytes kObjectBytes = 64 * units::MB;
constexpr double kAgeThresholdS = 5.0;
constexpr units::Bytes kByteThreshold = 16 * kObjectBytes;  // 1 GiB
constexpr double kRoundIntervalS = 30.0;
constexpr double kDeepOpsPerS = 8.0;

struct Cell {
  const char* key;
  const char* label;
  bool write_back;
  backend::FlushPolicy policy;
};

/// Built into a fresh string: `"o" + std::to_string(i)` trips GCC 12's
/// -Wrestrict false positive (PR 105329) at -O3.
std::string object_name(std::size_t i) {
  std::string name;
  name.push_back('o');
  name += std::to_string(i);
  return name;
}

struct CellResult {
  double p99_read_s = 0.0;
  double mean_read_s = 0.0;
  double fees_usd = 0.0;
  double idle_usd_per_hour = 0.0;
  backend::DirtyWindowStats window;
  std::uint64_t dropped_dirty = 0;
  std::uint64_t reads = 0;
  std::uint64_t not_found_reads = 0;
  std::uint64_t deep_throttled_ops = 0;
};

CellResult run_cell(const Cell& cell, double ingest_qps, double duration_s) {
  backend::ObjectStoreBackend::Config deep_cfg;
  deep_cfg.throttle = backend::Throttle::Config{kDeepOpsPerS, 24.0};
  backend::ObjectStoreBackend deep(sim::objstore_link(), PricingCatalog::aws(),
                                   deep_cfg);
  backend::CloudCacheBackend::Config cache_cfg;
  cache_cfg.auto_scale = false;
  cache_cfg.nodes = 1;
  cache_cfg.link = sim::cloudcache_link();
  backend::CloudCacheBackend fast(cache_cfg, PricingCatalog::aws());
  backend::TieredColdStore::Config tiered_cfg;
  tiered_cfg.write_mode =
      cell.write_back ? backend::TieredColdStore::WriteMode::kWriteBack
                      : backend::TieredColdStore::WriteMode::kWriteThrough;
  // Reads of cold objects must not refill the bounded cache: promotion
  // churn would evict recent (possibly dirty) residents and blur the
  // window accounting this bench exists to measure.
  tiered_cfg.promote_on_hit = false;
  backend::TieredColdStore tiered({&fast, &deep}, tiered_cfg);
  backend::FlushScheduler sched(tiered, cell.policy);

  Rng rng(0x5EEDBACC);
  SampleSet read_latencies;
  CellResult result;
  const auto total_puts =
      static_cast<std::size_t>(duration_s * ingest_qps);
  double last_round = 0.0;
  for (std::size_t i = 0; i < total_puts; ++i) {
    const double now = static_cast<double>(i) / ingest_qps;
    (void)tiered.put(object_name(i), Blob(8), kObjectBytes, now);
    // The ingest cadence drives the drainer — no explicit flush anywhere.
    const bool round_boundary = now - last_round >= kRoundIntervalS;
    if (round_boundary) last_round = now;
    (void)sched.observe(now, round_boundary);
    if (i % 4 == 3) {
      // Alternate a hot read (recent object, cache-resident in every cell)
      // with a cold read of an object old enough to have been LRU-evicted
      // from the bounded cache in *every* cell — so the read mix is
      // identical across serving paths and the p99 measures the deep
      // tier's queueing, not one-sample membership noise.
      const bool cold = (i / 4) % 2 == 1 && i > 600;
      std::size_t target;
      if (cold) {
        target = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i - 600)));
      } else {
        const auto lo = i >= 64 ? i - 64 : 0;
        target = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(lo), static_cast<std::int64_t>(i)));
      }
      const auto got = tiered.get(object_name(target), now);
      read_latencies.add(got.latency_s);
      ++result.reads;
      if (!got.found) ++result.not_found_reads;
    }
  }
  result.p99_read_s = read_latencies.percentile(99.0);
  result.mean_read_s = read_latencies.mean();
  result.fees_usd = tiered.stats().fees_usd;
  result.idle_usd_per_hour = tiered.idle_cost(3600.0);
  result.window = sched.dirty_window_stats(duration_s);
  result.dropped_dirty = tiered.dropped_dirty_count();
  result.deep_throttled_ops = deep.stats().throttled_ops;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig_writeback_window");
  bench::banner("Write-back window",
                "Flush thresholds x ingest QPS: tail, fees, bytes at risk");

  backend::FlushPolicy round_only;  // defaults: flush at round boundaries
  backend::FlushPolicy age_only;
  age_only.flush_on_round_boundary = false;
  age_only.max_dirty_age_s = kAgeThresholdS;
  backend::FlushPolicy bytes_only;
  bytes_only.flush_on_round_boundary = false;
  bytes_only.max_dirty_bytes = kByteThreshold;
  backend::FlushPolicy combined;
  combined.flush_on_round_boundary = false;
  combined.max_dirty_age_s = kAgeThresholdS;
  combined.max_dirty_bytes = kByteThreshold;
  combined.max_drain_objects = 8;

  const Cell cells[] = {
      {"wt", "write-through", false, {}},
      {"wb-round", "write-back, round-boundary flush only", true, round_only},
      {"wb-age", "write-back, age <= 5 s", true, age_only},
      {"wb-bytes", "write-back, bytes <= 1 GiB", true, bytes_only},
      {"wb-age-bytes", "write-back, age+bytes, slice 8", true, combined},
  };
  const double qps_grid[] = {2.0, 8.0, 32.0};
  const double duration_s = std::max(30.0, 240.0 * args.scale);

  std::printf(
      "\n%zu-object cache node over a throttled object store "
      "(%.0f admissions/s);\n64 MB objects, reads = 1/4 of ingest ops "
      "(alternating hot/cold), %.0f s per cell.\n",
      static_cast<std::size_t>(PricingCatalog::aws().cache_node_capacity /
                               kObjectBytes),
      kDeepOpsPerS, duration_s);

  bool age_bounded = true;
  bool bytes_bounded = true;
  bool nothing_lost_scheduled = true;
  bool wb_beats_wt_everywhere = true;
  bool wb_beats_wt_at_peak = false;
  for (const double qps : qps_grid) {
    Table table({"serving path", "p99 read (s)", "mean read (s)",
                 "peak dirty (MB)", "peak age (s)", "at-risk (GB*s)",
                 "lost", "fees ($)", "deep waits"});
    CellResult wt_result;
    for (const auto& cell : cells) {
      const auto r = run_cell(cell, qps, duration_s);
      if (std::string(cell.key) == "wt") wt_result = r;
      table.add_row(
          {cell.label, fmt(r.p99_read_s, 2), fmt(r.mean_read_s, 2),
           fmt(units::to_mb(r.window.peak_dirty_bytes), 0),
           fmt(r.window.peak_oldest_dirty_age_s, 2),
           fmt(r.window.bytes_at_risk_integral / 1e9, 1),
           std::to_string(r.window.lost_objects + r.dropped_dirty),
           fmt(r.fees_usd, 3), std::to_string(r.deep_throttled_ops)});
      const std::string prefix =
          std::string(cell.key) + "/qps" + fmt(qps, 0);
      report.add(prefix + "/p99_read_s", r.p99_read_s, "s");
      report.add(prefix + "/mean_read_s", r.mean_read_s, "s");
      report.add(prefix + "/peak_dirty_bytes",
                 static_cast<double>(r.window.peak_dirty_bytes), "B");
      report.add(prefix + "/peak_oldest_dirty_age_s",
                 r.window.peak_oldest_dirty_age_s, "s");
      report.add(prefix + "/bytes_at_risk_integral",
                 r.window.bytes_at_risk_integral, "B*s");
      report.add(prefix + "/dropped_dirty",
                 static_cast<double>(r.dropped_dirty));
      report.add(prefix + "/flushes", static_cast<double>(r.window.flushes));
      report.add(prefix + "/drained_objects",
                 static_cast<double>(r.window.drained_objects));
      report.add(prefix + "/fees_usd", r.fees_usd, "$");
      report.add(prefix + "/not_found_reads",
                 static_cast<double>(r.not_found_reads));

      const bool scheduled = cell.policy.scheduled();
      if (scheduled && cell.policy.max_dirty_age_s > 0.0 &&
          r.window.peak_oldest_dirty_age_s >
              cell.policy.max_dirty_age_s + 1e-9) {
        age_bounded = false;
      }
      if (scheduled && cell.policy.max_dirty_bytes > 0 &&
          r.window.peak_dirty_bytes > cell.policy.max_dirty_bytes) {
        bytes_bounded = false;
      }
      if (scheduled && (r.dropped_dirty > 0 || r.not_found_reads > 0)) {
        nothing_lost_scheduled = false;
      }
      if (scheduled) {
        // 5% + 100 ms slack below the deep tier's sustained rate: with no
        // queueing pressure both paths serve the same read mix and tiny
        // LRU-ordering differences are noise, not signal.
        if (r.p99_read_s > wt_result.p99_read_s * 1.05 + 0.1) {
          wb_beats_wt_everywhere = false;
        }
        if (qps == qps_grid[2] && r.p99_read_s < wt_result.p99_read_s) {
          wb_beats_wt_at_peak = true;
        }
      }
    }
    std::printf("\noffered ingest: %.0f puts/s\n%s", qps,
                table.to_string().c_str());
  }

  std::printf(
      "\nVerdicts:\n"
      "  oldest-dirty age <= configured threshold ........ %s\n"
      "  peak dirty bytes <= configured threshold ........ %s\n"
      "  scheduled cells lose nothing .................... %s\n"
      "  write-back p99 read <= write-through (all QPS) .. %s\n"
      "  write-back p99 read <  write-through (peak QPS) . %s\n",
      age_bounded ? "yes" : "NO", bytes_bounded ? "yes" : "NO",
      nothing_lost_scheduled ? "yes" : "NO",
      wb_beats_wt_everywhere ? "yes" : "NO",
      wb_beats_wt_at_peak ? "yes" : "NO");
  report.add("verdict/age_bounded", age_bounded ? 1.0 : 0.0);
  report.add("verdict/bytes_bounded", bytes_bounded ? 1.0 : 0.0);
  report.add("verdict/scheduled_lose_nothing",
             nothing_lost_scheduled ? 1.0 : 0.0);
  report.add("verdict/wb_p99_beats_wt_everywhere",
             wb_beats_wt_everywhere ? 1.0 : 0.0);
  report.add("verdict/wb_p99_beats_wt_at_peak_qps",
             wb_beats_wt_at_peak ? 1.0 : 0.0);
  report.write(args);
  return 0;
}
