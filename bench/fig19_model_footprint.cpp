// Figure 19 (Appendix D): memory footprint of the models commonly used in
// cross-device FL — the observation that makes function-memory caching
// viable (I3: average ~161 MB vs a 10 GB function ceiling).
#include <algorithm>

#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  // The footprint table is a pure catalog dump — --scale has nothing to
  // shrink, but the common CLI still applies so --json works uniformly.
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig19");
  bench::banner("Figure 19", "Memory footprint of 23 cross-device FL models");

  auto specs = std::vector<ModelSpec>(ModelZoo::instance().all().begin(),
                                      ModelZoo::instance().all().end());
  std::sort(specs.begin(), specs.end(),
            [](const ModelSpec& a, const ModelSpec& b) {
              return a.object_mib() < b.object_mib();
            });

  Table table({"model", "parameters (M)", "object size (MiB)",
               "fits 10 GB function?"});
  for (const auto& s : specs) {
    table.add_row({s.name, fmt(static_cast<double>(s.parameters) / 1e6, 1),
                   fmt(s.object_mib(), 1),
                   s.object_bytes < 10 * units::GB ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());

  const double avg = ModelZoo::instance().average_object_mib();
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("average model object size", 160.88, avg, "MiB");
  report.headline("models in the zoo", 23, static_cast<double>(specs.size()),
                  "");
  report.write(args);
  return 0;
}
