// bench_hotpath — wall-clock scaling of the real-thread serving hot path.
//
// Unlike every fig* bench (simulated time), this one measures actual ops/sec
// on actual OS threads: 1–16 workers replay pre-built randomized request
// streams against ShardedStore::hot_get/hot_put/hot_evict and we time the
// wall clock around the barrier-started run (ThreadPool::run_replicated).
//
// Axes, following the NUMA-DSU-style methodology named in the ROADMAP:
//   keyspace   contended   — one tenant, 4 shards, all threads hammer one
//                            Zipf(0.9) keyspace: the lock-contention case
//              partitioned — tenant per thread, disjoint uniform keyspaces:
//                            the embarrassingly-parallel scaling ceiling
//   mix        read_heavy  — 95% get / 4% put / 1% evict
//              mixed       — 70% get / 25% put / 5% evict (contended only)
//   mode       exclusive   — pre-refactor baseline: writer lock + mutating
//                            CacheEngine::lookup on every access
//              striped     — shared-lock const read + per-worker deferred
//                            stripes, batched into the engine
//
// Verdicts (in-bench asserts, nonzero exit on failure):
//   * striped_beats_exclusive: at >= 8 threads on the contended read-heavy
//     sweep the lock-minimal path must out-throughput the exclusive
//     baseline. Only evaluated at full-ish scale (--scale >= 0.5) — tiny
//     smoke streams (CI TSan leg runs --scale 0.05) measure mostly setup.
//   * deferred_ledger_exact: after hot_sync, engine hits+misses must equal
//     the gets issued, every striped cell — the deferred bookkeeping loses
//     nothing.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "obs/hot_counters.hpp"
#include "serve/sharded_store.hpp"
#include "serve/thread_pool.hpp"

using namespace flstore;

namespace {

double now_s() {
  // flstore-lint: allow(wall-clock) -- real CPU bench: ops/sec IS the result
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(since_epoch).count();
}

enum class OpKind : std::uint8_t { kGet, kPut, kEvict };

struct Op {
  MetadataKey key;
  OpKind kind = OpKind::kGet;
};

struct MixSpec {
  const char* name;
  double put_share;
  double evict_share;
};

constexpr MixSpec kReadHeavy{"read_heavy", 0.04, 0.01};
constexpr MixSpec kMixed{"mixed", 0.25, 0.05};

constexpr units::Bytes kObjectBytes = 256 * 1024;
constexpr int kContendedKeys = 2048;
constexpr int kKeysPerTenant = 512;
constexpr int kContendedShards = 4;
constexpr std::uint64_t kSeed = 0x5EEDF00DULL;

MetadataKey nth_key(int rank) {
  // Spread ranks over (client, round) so hashes are well distributed.
  return MetadataKey::update(rank % 64, rank / 64);
}

fed::FLJobConfig bench_job() {
  fed::FLJobConfig cfg;
  cfg.model = "resnet18";
  cfg.pool_size = 60;
  cfg.clients_per_round = 8;
  cfg.rounds = 4;
  cfg.seed = 20;
  return cfg;
}

/// One thread's randomized stream: `ops` draws from `n_keys` (through the
/// shared Zipf table when `zipf` is set, uniform otherwise), op kinds drawn
/// per the mix. The table is hoisted to main: building the O(n) CDF per
/// stream (threads × cells × arms of it) was pure setup overhead repeated
/// for the one (n_keys, exponent) pair the bench ever uses.
std::vector<Op> build_stream(int ops, int n_keys, const MixSpec& mix,
                             const ZipfDistribution* zipf,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> stream;
  stream.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    Op op;
    const auto rank = zipf != nullptr
                          ? (*zipf)(rng)
                          : static_cast<std::int32_t>(
                                rng.uniform_int(0, n_keys - 1));
    op.key = nth_key(rank);
    const double r = rng.uniform();
    op.kind = r < mix.put_share               ? OpKind::kPut
              : r < mix.put_share + mix.evict_share ? OpKind::kEvict
                                                    : OpKind::kGet;
    stream.push_back(op);
  }
  return stream;
}

struct CellResult {
  double ops_per_s = 0.0;
  bool ledger_exact = true;
};

/// Run one (keyspace, mix, mode, threads) cell on a fresh plane.
/// `partitioned` gives each thread its own tenant and keyspace;
/// `contended_zipf` is the shared popularity table for the contended case.
CellResult run_cell(const fed::FLJob& job, serve::HotPathMode mode,
                    bool partitioned, const MixSpec& mix, int threads,
                    int ops_per_thread, const ZipfDistribution& contended_zipf) {
  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  serve::ShardedStoreConfig cfg;
  cfg.worker_threads = 0;  // the hot path spawns its own workers
  obs::HotCounters counters;
  cfg.hot_path.mode = mode;
  cfg.hot_path.counters = &counters;
  serve::ShardedStore plane(cold, cfg);

  const int n_tenants = partitioned ? threads : 1;
  const int n_keys = partitioned ? kKeysPerTenant : kContendedKeys;
  const int shards = partitioned ? 1 : kContendedShards;
  for (int t = 0; t < n_tenants; ++t) {
    (void)plane.add_tenant(job, {}, shards);
  }
  // Prefill so the streams measure steady-state serving, not cold fills.
  for (int t = 0; t < n_tenants; ++t) {
    for (int k = 0; k < n_keys; ++k) {
      (void)plane.hot_put(t, nth_key(k), kObjectBytes, 0.0, 0);
    }
  }

  std::vector<std::vector<Op>> streams;
  streams.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    streams.push_back(build_stream(
        ops_per_thread, n_keys, mix, partitioned ? nullptr : &contended_zipf,
        kSeed ^ (static_cast<std::uint64_t>(w) * 0x9E3779B97F4A7C15ULL)));
  }

  counters.reset();
  // Best-of-2: one replay warms allocator/page state, scheduler jitter on
  // shared CI runners hits one run, not both. Both replays' bookkeeping
  // accumulates into the ledger check below.
  constexpr int kRepeats = 2;
  double best_elapsed = 1e18;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const double t0 = now_s();
    serve::ThreadPool::run_replicated(threads, [&](int worker) {
      const JobId tenant = partitioned ? worker : 0;
      for (const auto& op : streams[static_cast<std::size_t>(worker)]) {
        switch (op.kind) {
          case OpKind::kGet:
            (void)plane.hot_get(tenant, op.key, 0.0, worker);
            break;
          case OpKind::kPut:
            (void)plane.hot_put(tenant, op.key, kObjectBytes, 0.0, worker);
            break;
          case OpKind::kEvict:
            (void)plane.hot_evict(tenant, op.key, worker);
            break;
        }
      }
    });
    best_elapsed = std::min(best_elapsed, now_s() - t0);
  }
  plane.hot_sync();

  CellResult result;
  const double total_ops =
      static_cast<double>(threads) * static_cast<double>(ops_per_thread);
  result.ops_per_s = total_ops / std::max(best_elapsed, 1e-9);

  // Ledger exactness: every get the workers issued must be booked as
  // exactly one hit or miss once the stripes are drained.
  std::uint64_t booked = 0;
  for (int s = 0; s < plane.shard_count(); ++s) {
    const auto& engine = plane.shard(s).engine();
    booked += engine.hits() + engine.misses();
  }
  result.ledger_exact = booked == counters.total(obs::HotCounters::kGets);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("hotpath");
  bench::banner("Hot path (extension)",
                "Real-thread ops/sec scaling: exclusive vs lock-minimal");

  const int ops_per_thread =
      std::max(1000, static_cast<int>(60000 * args.scale));
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  // The verdict needs streams long enough that lock behaviour, not
  // setup/teardown, dominates the measurement.
  const bool evaluate_speedup = args.scale >= 0.5;

  fed::FLJob job(bench_job());
  bool all_ok = true;
  bool ledger_ok = true;

  struct Sweep {
    const char* keyspace;
    bool partitioned;
    MixSpec mix;
  };
  const std::vector<Sweep> sweeps = {
      {"contended", false, kReadHeavy},
      {"contended", false, kMixed},
      {"partitioned", true, kReadHeavy},
  };

  // One shared popularity table for every contended cell (the bench only
  // ever needs this (n, s) pair; see build_stream).
  const ZipfDistribution contended_zipf(kContendedKeys, 0.9);

  double best_speedup_8plus = 0.0;
  for (const auto& sweep : sweeps) {
    std::printf("\n[%s / %s] %d ops/thread\n", sweep.keyspace, sweep.mix.name,
                ops_per_thread);
    Table table({"threads", "exclusive (ops/s)", "striped (ops/s)",
                 "speedup"});
    for (const int threads : thread_counts) {
      const auto exclusive =
          run_cell(job, serve::HotPathMode::kExclusive, sweep.partitioned,
                   sweep.mix, threads, ops_per_thread, contended_zipf);
      const auto striped =
          run_cell(job, serve::HotPathMode::kStriped, sweep.partitioned,
                   sweep.mix, threads, ops_per_thread, contended_zipf);
      ledger_ok = ledger_ok && exclusive.ledger_exact && striped.ledger_exact;
      const double speedup =
          striped.ops_per_s / std::max(exclusive.ops_per_s, 1e-9);
      table.add_row({std::to_string(threads), fmt(exclusive.ops_per_s, 0),
                     fmt(striped.ops_per_s, 0), fmt(speedup, 2)});
      const std::string prefix = std::string("hotpath/") + sweep.keyspace +
                                 "/" + sweep.mix.name + "/t" +
                                 std::to_string(threads);
      report.add(prefix + "/exclusive", exclusive.ops_per_s, "ops/s");
      report.add(prefix + "/striped", striped.ops_per_s, "ops/s");
      report.add(prefix + "/speedup", speedup, "x");
      if (!sweep.partitioned && sweep.mix.put_share == kReadHeavy.put_share &&
          threads >= 8) {
        best_speedup_8plus = std::max(best_speedup_8plus, speedup);
      }
    }
    std::printf("%s", table.to_string().c_str());
  }

  std::printf("\nledger exactness (hits+misses == gets after hot_sync): %s\n",
              ledger_ok ? "PASS" : "FAIL");
  report.add("verdict/deferred_ledger_exact", ledger_ok ? 1.0 : 0.0);
  all_ok = all_ok && ledger_ok;

  if (evaluate_speedup) {
    const bool speedup_ok = best_speedup_8plus > 1.0;
    std::printf(
        "striped beats exclusive at >= 8 threads (contended, read-heavy): "
        "%.2fx — %s\n",
        best_speedup_8plus, speedup_ok ? "PASS" : "FAIL");
    report.add("verdict/striped_beats_exclusive_8plus", speedup_ok ? 1.0 : 0.0);
    report.add("hotpath/best_speedup_8plus", best_speedup_8plus, "x");
    all_ok = all_ok && speedup_ok;
  } else {
    std::printf(
        "speedup verdict skipped at --scale %.2f (< 0.5: streams too short "
        "to measure lock behaviour)\n",
        args.scale);
  }

  report.write(args);
  return all_ok ? 0 : 1;
}
