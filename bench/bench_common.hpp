// Shared scaffolding for the benchmark binaries (DESIGN.md §4): every bench
// prints a banner naming the paper artifact it regenerates, runs the
// simulation, and closes with paper-vs-measured headlines.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fed/request.hpp"
#include "sim/calibration.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace flstore::bench {

inline void banner(const char* artifact, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, title);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("%s\n", text); }

/// The §5.1 evaluation scenario for one model. `scale` < 1 shrinks rounds
/// and request counts proportionally (all benches default to full scale; a
/// smaller scale keeps CI runs quick without changing any per-request
/// quantity — only sample counts shrink).
inline sim::ScenarioConfig paper_scenario(const std::string& model,
                                          double scale = 1.0) {
  sim::ScenarioConfig cfg;
  cfg.model = model;
  cfg.rounds = static_cast<RoundId>(1000 * scale);
  cfg.duration_s = sim::kTraceDurationS * scale;
  cfg.total_requests = static_cast<std::size_t>(3000 * scale);
  cfg.round_interval_s = sim::kRoundIntervalS;
  return cfg;
}

/// Panel label used by the paper's figures for each §5.1 model.
inline std::string panel_label(const std::string& model) {
  if (model == "resnet18") return "Resnet18";
  if (model == "mobilenet_v3_small") return "MobileNetV2";  // paper's label
  if (model == "efficientnet_v2_s") return "EfficientNet";
  if (model == "swin_v2_t") return "SwinTransformer";
  return model;
}

}  // namespace flstore::bench
