// Shared scaffolding for the benchmark binaries (DESIGN.md §4): every bench
// prints a banner naming the paper artifact it regenerates, runs the
// simulation, and closes with paper-vs-measured headlines.
//
// Common CLI (parse_args):
//   --scale X      shrink rounds/request counts proportionally (CI smoke
//                  runs; per-request quantities are unchanged)
//   --json[=path]  also write the headline metrics as BENCH_<name>.json —
//                  the perf-trajectory artifact CI uploads per commit
//   --trace[=path] export the run's sampled spans as Chrome trace-event
//                  JSON (TRACE_<name>.json by default) — load in Perfetto
//                  or chrome://tracing; timestamps are simulated time
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "backend/replicated_cold_store.hpp"
#include "common/table.hpp"
#include "fed/request.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/telemetry.hpp"
#include "sim/calibration.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace flstore::bench {

inline void banner(const char* artifact, const char* title) {
  std::printf("\n========================================================\n");
  std::printf("%s — %s\n", artifact, title);
  std::printf("========================================================\n");
}

inline void note(const char* text) { std::printf("%s\n", text); }

struct Args {
  double scale = 1.0;
  bool json = false;
  std::string json_path;  ///< empty = BENCH_<name>.json
  bool trace = false;
  std::string trace_path;  ///< empty = TRACE_<name>.json
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  const auto set_scale = [&args](const char* text) {
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(value > 0.0)) {
      // Fail hard: a typoed scale must not turn a CI smoke run into the
      // full 50-hour-trace bench (exiting 0 would hide it completely).
      std::fprintf(stderr, "invalid --scale '%s'\n", text);
      std::exit(2);
    }
    args.scale = value;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      set_scale(arg.c_str() + 8);
    } else if (arg == "--scale") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--scale needs a value\n");
        std::exit(2);
      }
      set_scale(argv[++i]);
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = arg.substr(7);
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace = true;
      args.trace_path = arg.substr(8);
    } else if (arg == "--trace") {
      args.trace = true;
    } else {
      // Fatal for the same reason as a bad --scale value: a typoed flag
      // must not silently run the full-size bench.
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Collects headline metrics and (with --json) writes them as the bench's
/// BENCH_*.json artifact: {"bench", "scale", "metrics": [{name,value,unit}]}.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& name, double value, std::string unit = "") {
    metrics_.push_back(Metric{name, value, std::move(unit)});
  }

  /// Embed the registry's full snapshot as a "telemetry" object in the
  /// artifact (every counter/gauge value plus histogram summaries), so one
  /// BENCH_*.json carries both the headline metrics and the raw series.
  void attach_telemetry(const obs::MetricsRegistry& metrics) {
    telemetry_json_ = metrics.snapshot_json();
  }

  /// The standard paper-vs-measured footer line, also recorded as a metric.
  void headline(const std::string& what, double paper_value,
                double measured_value, const std::string& unit) {
    sim::print_headline(what, paper_value, measured_value, unit);
    add(what, measured_value, unit);
  }

  /// Write the artifact when --json was given; returns the path ("" if
  /// disabled). Non-finite values serialize as null (JSON has no NaN).
  std::string write(const Args& args) const {
    if (!args.json) return "";
    const std::string path =
        args.json_path.empty() ? "BENCH_" + bench_ + ".json" : args.json_path;
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << escaped(bench_) << "\",\n"
        << "  \"scale\": " << args.scale << ",\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const auto& m = metrics_[i];
      out << "    {\"name\": \"" << escaped(m.name) << "\", \"value\": ";
      if (std::isfinite(m.value)) {
        out << m.value;
      } else {
        out << "null";
      }
      out << ", \"unit\": \"" << escaped(m.unit) << "\"}";
      out << (i + 1 < metrics_.size() ? ",\n" : "\n");
    }
    out << "  ]";
    if (!telemetry_json_.empty()) {
      out << ",\n  \"telemetry\": " << telemetry_json_;
    }
    out << "\n}\n";
    std::printf("\nwrote %s (%zu metrics)\n", path.c_str(), metrics_.size());
    return path;
  }

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  static std::string escaped(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Metric> metrics_;
  std::string telemetry_json_;
};

/// Export the tracer's sampled spans when --trace was given; returns the
/// path ("" if disabled). The file is Chrome trace-event JSON — open it in
/// Perfetto (ui.perfetto.dev) or chrome://tracing.
inline std::string write_trace(const Args& args, const obs::Tracer& tracer,
                               const std::string& bench) {
  if (!args.trace) return "";
  const std::string path =
      args.trace_path.empty() ? "TRACE_" + bench + ".json" : args.trace_path;
  if (!tracer.write_chrome_trace(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return "";
  }
  std::printf("wrote %s (%zu spans, %llu dropped)\n", path.c_str(),
              tracer.span_count(),
              static_cast<unsigned long long>(tracer.dropped()));
  return path;
}

/// The observability overhead guard: with telemetry being pure bookkeeping
/// in simulated time, the instrumented run's sim-time throughput must sit
/// within `tolerance` of the plain run's (the ISSUE's < 5% budget). Prints
/// and records the verdict; returns it so benches can also assert.
inline bool check_observability_overhead(JsonReport& report, double off_qps,
                                         double on_qps,
                                         double tolerance = 0.05) {
  const double base = std::max(std::fabs(off_qps), 1e-12);
  const double delta = std::fabs(on_qps - off_qps) / base;
  const bool ok = delta < tolerance;
  std::printf(
      "observability overhead: %.3f%% throughput delta "
      "(%.1f qps off vs %.1f qps on) — within %.0f%%: %s\n",
      100.0 * delta, off_qps, on_qps, 100.0 * tolerance, ok ? "yes" : "NO");
  report.add("obs/throughput_delta_fraction", delta);
  report.add("verdict/observability_overhead_lt_5pct", ok ? 1.0 : 0.0);
  return ok;
}

/// The §5.1 evaluation scenario for one model. `scale` < 1 shrinks rounds
/// and request counts proportionally (all benches default to full scale; a
/// smaller scale keeps CI runs quick without changing any per-request
/// quantity — only sample counts shrink).
inline sim::ScenarioConfig paper_scenario(const std::string& model,
                                          double scale = 1.0) {
  sim::ScenarioConfig cfg;
  cfg.model = model;
  cfg.rounds = static_cast<RoundId>(1000 * scale);
  cfg.duration_s = sim::kTraceDurationS * scale;
  cfg.total_requests = static_cast<std::size_t>(3000 * scale);
  cfg.round_interval_s = sim::kRoundIntervalS;
  return cfg;
}

/// Panel label used by the paper's figures for each §5.1 model.
inline std::string panel_label(const std::string& model) {
  if (model == "resnet18") return "Resnet18";
  if (model == "mobilenet_v3_small") return "MobileNetV2";  // paper's label
  if (model == "efficientnet_v2_s") return "EfficientNet";
  if (model == "swin_v2_t") return "SwinTransformer";
  return model;
}

// --- backend sweep (Figs 7/8/10/17) ---------------------------------------
// The paper's FLStore-vs-ObjStore-vs-CloudCache curves, regenerated through
// ONE code path: every row is core::FLStore::serve over a different
// backend::StorageBackend. The "direct" rows disable the serverless cache
// (capacity 1 byte: nothing fits, every request runs against the cold
// backend), so what they measure is the raw data plane — exactly the
// baselines' bottleneck, minus any code divergence.

struct BackendSweepRow {
  std::string label;
  backend::BackendKind kind = backend::BackendKind::kObjectStore;
  bool cached = false;  ///< serverless cache in front of the backend
  sim::RunResult run;
  double idle_usd_per_hour = 0.0;  ///< backend + function keep-alive
};

inline std::vector<BackendSweepRow> run_backend_sweep(
    sim::Scenario& sc, const std::vector<fed::NonTrainingRequest>& trace) {
  struct Cell {
    const char* label;
    backend::BackendKind kind;
    bool cached;
  };
  const Cell cells[] = {
      {"FLStore (cache + objstore cold)", backend::BackendKind::kObjectStore,
       true},
      {"direct object store", backend::BackendKind::kObjectStore, false},
      {"direct cloud cache", backend::BackendKind::kCloudCache, false},
      {"direct local SSD", backend::BackendKind::kLocalSsd, false},
  };
  std::vector<BackendSweepRow> rows;
  for (const auto& cell : cells) {
    auto cold = sc.make_cold_backend(cell.kind);
    auto fl = sc.make_flstore_over(*cold,
                                   cell.cached ? core::PolicyMode::kTailored
                                               : core::PolicyMode::kLru,
                                   cell.cached ? units::Bytes{0}
                                               : units::Bytes{1});
    auto adapter = sim::adapt(*fl);
    BackendSweepRow row;
    row.label = cell.label;
    row.kind = cell.kind;
    row.cached = cell.cached;
    row.run = sim::run_trace(*adapter, sc.job(), trace,
                             sc.config().duration_s,
                             sc.config().round_interval_s);
    row.idle_usd_per_hour =
        cold->idle_cost(3600.0) + fl->infrastructure_cost(3600.0);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Mean serving latency / cost of a sweep row (table, JSON metrics, and
/// the benches' paper-ordering headlines all go through these). max(1, …):
/// a degenerate --scale can yield an empty trace; means of 0 beat NaN rows
/// and a bogus ordering verdict.
inline double sweep_mean_latency(const BackendSweepRow& row) {
  return row.run.total_latency_s() /
         static_cast<double>(std::max<std::size_t>(1, row.run.records.size()));
}
inline double sweep_mean_cost(const BackendSweepRow& row) {
  return row.run.total_serving_usd() /
         static_cast<double>(std::max<std::size_t>(1, row.run.records.size()));
}

/// Shared sweep table + JSON metrics; benches call this after their own
/// figure-specific output. Returns the rows for headline checks.
inline std::vector<BackendSweepRow> print_backend_sweep(
    sim::Scenario& sc, const std::vector<fed::NonTrainingRequest>& trace,
    JsonReport& report) {
  note("\nCold-backend sweep — every row is core::FLStore::serve over a\n"
       "backend::StorageBackend; the direct rows disable the serverless\n"
       "cache, so they measure the raw data plane (the paper's baselines,\n"
       "one code path):");
  auto rows = run_backend_sweep(sc, trace);
  Table table({"serving path", "mean lat (s)", "mean $/req", "hits", "misses",
               "idle $/h"});
  for (const auto& row : rows) {
    table.add_row({row.label, fmt(sweep_mean_latency(row), 3),
                   fmt_usd(sweep_mean_cost(row)),
                   std::to_string(row.run.total_hits()),
                   std::to_string(row.run.total_misses()),
                   fmt_usd(row.idle_usd_per_hour)});
    const std::string prefix = "sweep/" + std::string(to_string(row.kind)) +
                               (row.cached ? "+cache" : "");
    report.add(prefix + "/mean_latency_s", sweep_mean_latency(row), "s");
    report.add(prefix + "/mean_cost_usd", sweep_mean_cost(row), "$");
    report.add(prefix + "/idle_usd_per_hour", row.idle_usd_per_hour, "$/h");
  }
  std::printf("%s", table.to_string().c_str());
  return rows;
}

// --- multi-region cold tier (Figs 13/14 backend-replication sections) -----
// The geo deployment the replication benches sweep: `serving_regions` warm
// NVMe regions at WAN distances 0..R-1 (all fault-prone — a Zipf outage
// schedule hits the home region hardest) plus an always-up far object-store
// origin. With R=1 a home-region outage forces every read to re-fetch from
// the origin across the WAN; with R>=3 reads fail over to a near replica
// and read-repair heals the home copy — the paper's replication-vs-refetch
// story, reproduced on the StorageBackend seam.

/// Fixed count of geographic fault domains the outage schedule is drawn
/// over, independent of how many serving regions a deployment provisions —
/// deploying fewer regions must not make the surviving ones fail more
/// often, or the replication-vs-refetch comparison would be rigged.
inline constexpr int kGeoFaultDomains = 5;

/// Region outages for a geo deployment: map the fault schedule onto the
/// fixed fault domains, then keep only the domains this deployment
/// actually hosts (the origin never fails — it is the durable tier).
/// Every deployment size sees the *same* per-region outage law; larger
/// deployments simply host (and absorb) more of the schedule.
inline std::vector<backend::OutageWindow> geo_outages(
    const std::vector<FaultEvent>& faults, int serving_regions,
    double outage_duration_s) {
  auto windows = backend::region_outages_from_faults(
      faults, static_cast<std::size_t>(kGeoFaultDomains), outage_duration_s);
  std::erase_if(windows, [&](const backend::OutageWindow& w) {
    return w.region >= static_cast<std::size_t>(serving_regions);
  });
  return windows;
}

inline std::unique_ptr<backend::ReplicatedColdStore> make_geo_cold_store(
    int serving_regions, obs::Telemetry* telemetry = nullptr) {
  // With telemetry, each region's backend is wrapped individually (region
  // label = region name), so backend_ops_total / latency histograms split
  // per region — failovers show up as reads booked against "ssd-1" while
  // "ssd-0" sits in an outage window.
  const auto instrumented =
      [telemetry](std::unique_ptr<backend::StorageBackend> raw,
                  const std::string& region_name) {
        if (telemetry == nullptr) return raw;
        obs::InstrumentedBackend::Options opts;
        opts.metrics = &telemetry->metrics;
        opts.tracer = &telemetry->tracer;
        opts.region = region_name;
        return std::unique_ptr<backend::StorageBackend>(
            std::make_unique<obs::InstrumentedBackend>(std::move(raw),
                                                       std::move(opts)));
      };
  std::vector<backend::ReplicatedColdStore::Region> regions;
  regions.reserve(static_cast<std::size_t>(serving_regions) + 1);
  for (int i = 0; i < serving_regions; ++i) {
    backend::ReplicatedColdStore::Region region;
    region.name = "ssd-" + std::to_string(i);
    backend::LocalSsdBackend::Config ssd_cfg;
    ssd_cfg.link = sim::local_ssd_link();
    region.owned = instrumented(std::make_unique<backend::LocalSsdBackend>(
                                    ssd_cfg, PricingCatalog::aws()),
                                region.name);
    region.wan = sim::interregion_link(i);
    regions.push_back(std::move(region));
  }
  backend::ReplicatedColdStore::Region origin;
  origin.name = "origin";
  origin.owned = instrumented(std::make_unique<backend::ObjectStoreBackend>(
                                  sim::objstore_link(), PricingCatalog::aws()),
                              origin.name);
  origin.wan = sim::interregion_link(std::max(3, serving_regions));
  origin.far = true;
  regions.push_back(std::move(origin));
  backend::ReplicatedColdStore::Config cfg;
  // Writes wait for two acks (home + nearest other replica); the rest of
  // the fan-out — including the far origin that guarantees durability —
  // streams in the background.
  cfg.write_quorum = 2;
  return std::make_unique<backend::ReplicatedColdStore>(
      std::move(regions), cfg, PricingCatalog::aws());
}

/// One row of a geo sweep: FLStore in direct mode (serverless cache
/// disabled) over the deployment, so every request measures the replicated
/// backend itself.
struct GeoRow {
  int serving_regions = 0;
  sim::RunResult run;
  double mean_latency_s = 0.0;
  double mean_cost_usd = 0.0;
  double egress_usd = 0.0;
  double idle_usd_per_hour = 0.0;
  std::uint64_t failover_reads = 0;
  std::uint64_t outage_skips = 0;
};

inline GeoRow run_geo_deployment(
    sim::Scenario& sc, const std::vector<fed::NonTrainingRequest>& trace,
    int serving_regions, const std::vector<backend::OutageWindow>& outages) {
  auto geo = make_geo_cold_store(serving_regions);
  geo->set_outages(outages);
  auto fl = sc.make_flstore_over(*geo, core::PolicyMode::kLru,
                                 units::Bytes{1});
  auto adapter = sim::adapt(*fl);
  GeoRow row;
  row.serving_regions = serving_regions;
  row.run = sim::run_trace(*adapter, sc.job(), trace, sc.config().duration_s,
                           sc.config().round_interval_s);
  const auto n = static_cast<double>(
      std::max<std::size_t>(1, row.run.records.size()));
  row.mean_latency_s = row.run.total_latency_s() / n;
  row.mean_cost_usd = row.run.total_serving_usd() / n;
  row.egress_usd = geo->egress_fees_usd();
  row.idle_usd_per_hour = geo->idle_cost(3600.0);
  row.failover_reads = geo->failover_reads();
  row.outage_skips = geo->outage_skips();
  return row;
}

}  // namespace flstore::bench
