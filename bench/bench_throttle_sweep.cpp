// Provisioned-IOPS throttle sweep (ISSUE 9 control-plane satellite):
// offered ops/s vs admitted ops/s across every throttled backend kind, and
// the live mid-run retune that is the Controller's kRetuneThrottle actuator.
//
// Each backend (object store, local SSD, cloud cache) sits behind the same
// token bucket: 8 sustained admissions/s, burst 16. The sweep offers put
// streams from well under to 4x over that rate and measures what the bucket
// actually admits. The contract under test is how provisioned stores
// degrade: below the sustained rate the throttle is invisible (zero added
// wait); at the cliff the achieved rate pins to the provisioned rate and
// every further offered op queues — latency grows without bound, but
// nothing errors.
//
// The retune arm replays the worst cell (4x overload) and, halfway through,
// does what the closed-loop controller does when throttle wait dominates a
// tick: StorageBackend::set_throttle to a raised rate. The op-denominated
// backlog then drains at the new rate and the tail returns to waitless —
// the before/after is the bench's demonstration that the actuator works
// mid-stream, not just at construction.
//
// Verdicts (also in the JSON): sub-provisioned offers see no added wait;
// over-provisioned offers cap at the provisioned rate; the wait cliff sits
// exactly at the provisioned rate on every backend; the mid-run retune
// drains the backlog the static bucket keeps forever.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "backend/cloud_cache_backend.hpp"
#include "backend/local_ssd_backend.hpp"
#include "backend/object_store_backend.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace flstore;

namespace {

constexpr double kProvisionedOpsPerS = 8.0;
constexpr double kBurstOps = 16.0;
constexpr units::Bytes kObjectBytes = 1 * units::MB;

/// Fresh string per object: `"o" + std::to_string(i)` trips GCC 12's
/// -Wrestrict false positive (PR 105329) at -O3.
std::string object_name(std::size_t i) {
  std::string name;
  name.push_back('o');
  name += std::to_string(i);
  return name;
}

std::unique_ptr<backend::StorageBackend> make_backend(const std::string& kind) {
  const backend::Throttle::Config throttle{kProvisionedOpsPerS, kBurstOps};
  if (kind == "objstore") {
    backend::ObjectStoreBackend::Config cfg;
    cfg.throttle = throttle;
    return std::make_unique<backend::ObjectStoreBackend>(
        sim::objstore_link(), PricingCatalog::aws(), cfg);
  }
  if (kind == "ssd") {
    backend::LocalSsdBackend::Config cfg;
    cfg.link = sim::local_ssd_link();
    cfg.throttle = throttle;
    return std::make_unique<backend::LocalSsdBackend>(cfg,
                                                      PricingCatalog::aws());
  }
  backend::CloudCacheBackend::Config cfg;
  cfg.link = sim::cloudcache_link();
  cfg.throttle = throttle;
  return std::make_unique<backend::CloudCacheBackend>(cfg,
                                                      PricingCatalog::aws());
}

struct SweepCell {
  double achieved_ops_s = 0.0;  ///< ops / makespan (arrival to last finish)
  double mean_wait_s = 0.0;     ///< mean latency the token bucket added
  double last_wait_s = 0.0;     ///< queueing seen by the final op
  std::uint64_t throttled_ops = 0;
};

/// Offer `ops_per_s` puts for `duration_s`; optionally retune the bucket to
/// `retune_rate` at half-time (0 = never), as the controller would.
SweepCell run_cell(backend::StorageBackend& be, double ops_per_s,
                   double duration_s, double retune_rate = 0.0) {
  SweepCell cell;
  const auto total = static_cast<std::size_t>(duration_s * ops_per_s);
  const double before_wait = be.stats().throttle_wait_s;
  bool retuned = false;
  double makespan = 0.0;
  double prev_wait = before_wait;
  for (std::size_t i = 0; i < total; ++i) {
    const double now = static_cast<double>(i) / ops_per_s;
    if (retune_rate > 0.0 && !retuned && now >= duration_s / 2.0) {
      (void)be.set_throttle(
          backend::Throttle::Config{retune_rate, kBurstOps}, now);
      retuned = true;
    }
    const auto res = be.put(object_name(i), Blob{1}, kObjectBytes, now);
    makespan = std::max(makespan, now + res.latency_s);
    const double wait = be.stats().throttle_wait_s;
    cell.last_wait_s = wait - prev_wait;
    prev_wait = wait;
  }
  cell.achieved_ops_s = makespan > 0.0 ? static_cast<double>(total) / makespan
                                       : 0.0;
  cell.mean_wait_s = (be.stats().throttle_wait_s - before_wait) /
                     static_cast<double>(total);
  cell.throttled_ops = be.stats().throttled_ops;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("throttle_sweep");
  bench::banner("Throttle sweep",
                "Offered vs admitted ops/s across throttled backends");

  const char* kinds[] = {"objstore", "ssd", "cache"};
  const double offered_grid[] = {2.0, 4.0, 8.0, 12.0, 16.0, 32.0};
  const double duration_s = std::max(30.0, 120.0 * args.scale);

  std::printf(
      "\nToken bucket on every backend: %.0f sustained ops/s, burst %.0f;\n"
      "%.0f MB puts for %.0f s per cell (simulated time).\n",
      kProvisionedOpsPerS, kBurstOps, units::to_mb(kObjectBytes), duration_s);

  bool below_cliff_waitless = true;
  bool caps_at_provisioned = true;
  bool cliff_at_provisioned = true;
  for (const char* kind : kinds) {
    Table table({"offered ops/s", "admitted ops/s", "mean added wait (s)",
                 "last-op wait (s)", "throttled ops"});
    double cliff_offered = 0.0;  // first offered rate with real queueing
    for (const double offered : offered_grid) {
      auto be = make_backend(kind);
      const auto cell = run_cell(*be, offered, duration_s);
      table.add_row({fmt(offered, 0), fmt(cell.achieved_ops_s, 2),
                     fmt(cell.mean_wait_s, 2), fmt(cell.last_wait_s, 2),
                     std::to_string(cell.throttled_ops)});
      const std::string prefix =
          std::string(kind) + "/offered" + fmt(offered, 0);
      report.add(prefix + "/achieved_ops_s", cell.achieved_ops_s, "ops/s");
      report.add(prefix + "/mean_wait_s", cell.mean_wait_s, "s");
      report.add(prefix + "/last_wait_s", cell.last_wait_s, "s");

      if (offered <= kProvisionedOpsPerS && cell.mean_wait_s > 0.05) {
        below_cliff_waitless = false;
      }
      if (offered > kProvisionedOpsPerS &&
          (cell.achieved_ops_s > kProvisionedOpsPerS * 1.15 ||
           cell.achieved_ops_s < kProvisionedOpsPerS * 0.85)) {
        caps_at_provisioned = false;
      }
      if (cliff_offered == 0.0 && cell.mean_wait_s > 0.5) {
        cliff_offered = offered;
      }
    }
    // The first grid point past the provisioned rate must be the cliff.
    if (cliff_offered != 12.0) cliff_at_provisioned = false;
    report.add(std::string(kind) + "/cliff_offered_ops_s", cliff_offered,
               "ops/s");
    std::printf("\nbackend: %s (cliff at %.0f offered ops/s)\n%s",
                kind, cliff_offered, table.to_string().c_str());
  }

  // The controller's actuator: 2x overload, bucket raised 4x at half-time —
  // the raised rate clears the incoming stream AND the accumulated debt.
  // The static bucket ends the run with minutes of queue; the retuned one
  // drains the op-denominated backlog and the tail is admitted waitless.
  const double overload = 2.0 * kProvisionedOpsPerS;
  auto static_be = make_backend("objstore");
  auto retuned_be = make_backend("objstore");
  const auto static_cell = run_cell(*static_be, overload, duration_s);
  const auto retuned_cell =
      run_cell(*retuned_be, overload, duration_s, 4.0 * kProvisionedOpsPerS);
  std::printf(
      "\nMid-run retune at %.0fx overload (raise to %.0f ops/s at t=%.0f):\n"
      "  static bucket:  last-op wait %.1f s, mean %.1f s\n"
      "  retuned bucket: last-op wait %.1f s, mean %.1f s\n",
      overload / kProvisionedOpsPerS, 4.0 * kProvisionedOpsPerS,
      duration_s / 2.0, static_cell.last_wait_s, static_cell.mean_wait_s,
      retuned_cell.last_wait_s, retuned_cell.mean_wait_s);
  report.add("retune/static_last_wait_s", static_cell.last_wait_s, "s");
  report.add("retune/retuned_last_wait_s", retuned_cell.last_wait_s, "s");
  report.add("retune/static_mean_wait_s", static_cell.mean_wait_s, "s");
  report.add("retune/retuned_mean_wait_s", retuned_cell.mean_wait_s, "s");
  const bool retune_drains = retuned_cell.last_wait_s < 1.0 &&
                             retuned_cell.last_wait_s <
                                 static_cell.last_wait_s / 4.0;

  std::printf(
      "\nVerdicts:\n"
      "  sub-provisioned offers add no wait .............. %s\n"
      "  over-provisioned offers cap at provisioned rate . %s\n"
      "  wait cliff sits at the provisioned rate ......... %s\n"
      "  mid-run retune drains the backlog ............... %s\n",
      below_cliff_waitless ? "yes" : "NO",
      caps_at_provisioned ? "yes" : "NO",
      cliff_at_provisioned ? "yes" : "NO", retune_drains ? "yes" : "NO");
  report.add("verdict/below_cliff_waitless", below_cliff_waitless ? 1.0 : 0.0);
  report.add("verdict/caps_at_provisioned", caps_at_provisioned ? 1.0 : 0.0);
  report.add("verdict/cliff_at_provisioned_rate",
             cliff_at_provisioned ? 1.0 : 0.0);
  report.add("verdict/retune_drains_backlog", retune_drains ? 1.0 : 0.0);
  report.write(args);
  return 0;
}
