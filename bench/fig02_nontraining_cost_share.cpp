// Figure 2: the non-training portion of total per-round FL cost for ten
// applications (200-client pool, EfficientNet, conventional ObjStore-Agg
// serving).
//
// Paper annotations: shares range 73 % to 97 %; "the non-training overhead
// can reach up to 97 %".
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main() {
  bench::banner("Figure 2",
                "Non-training share of per-round FL cost (EfficientNet)");

  sim::ScenarioConfig cfg = bench::paper_scenario("efficientnet_v2_s", 0.2);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();
  auto base = sim::adapt(sc.objstore_agg());
  const auto run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                  cfg.round_interval_s);
  const auto by = sim::by_workload(run);

  double train_cost = 0.0;
  constexpr int kSampleRounds = 20;
  for (RoundId r = 0; r < kSampleRounds; ++r) {
    train_cost += sim::training_profile(sc.job(), r * 5).vm_cost_usd;
  }
  train_cost /= kSampleRounds;

  Table table({"application", "non-training ($)", "training ($)",
               "total ($)", "non-training share"});
  double max_share = 0.0, min_share = 100.0;
  for (const auto type : fed::paper_workloads()) {
    const double nt = by.at(type).cost.mean();
    const double total = nt + train_cost;
    const double share = nt / total * 100.0;
    max_share = std::max(max_share, share);
    min_share = std::min(min_share, share);
    table.add_row({fed::paper_label(type), fmt_usd(nt), fmt_usd(train_cost),
                   fmt_usd(total), fmt_pct(share)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("max non-training cost share", 97.0, max_share, "%");
  sim::print_headline("min non-training cost share", 73.0, min_share, "%");
  return 0;
}
