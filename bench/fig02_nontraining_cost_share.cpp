// Figure 2: the non-training portion of total per-round FL cost for ten
// applications (200-client pool, EfficientNet, conventional ObjStore-Agg
// serving).
//
// Paper annotations: shares range 73 % to 97 %; "the non-training overhead
// can reach up to 97 %".
#include "bench_common.hpp"
#include "sim/training_model.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig02");
  bench::banner("Figure 2",
                "Non-training share of per-round FL cost (EfficientNet)");

  sim::ScenarioConfig cfg =
      bench::paper_scenario("efficientnet_v2_s", 0.2 * args.scale);
  cfg.pool_size = 200;
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();
  auto base = sim::adapt(sc.objstore_agg());
  const auto run = sim::run_trace(*base, sc.job(), trace, cfg.duration_s,
                                  cfg.round_interval_s);
  const auto by = sim::by_workload(run);

  // Stride adapts so a small --scale never indexes past the job's rounds.
  double train_cost = 0.0;
  const auto stride = std::max<RoundId>(1, cfg.rounds / 20);
  int samples = 0;
  for (RoundId r = 0; r < cfg.rounds && samples < 20; r += stride, ++samples) {
    train_cost += sim::training_profile(sc.job(), r).vm_cost_usd;
  }
  train_cost /= std::max(1, samples);

  Table table({"application", "non-training ($)", "training ($)",
               "total ($)", "non-training share"});
  double max_share = 0.0, min_share = 100.0;
  for (const auto type : fed::paper_workloads()) {
    const auto it = by.find(type);
    if (it == by.end()) continue;  // tiny --scale traces can skip a workload
    const double nt = it->second.cost.mean();
    const double total = nt + train_cost;
    const double share = nt / total * 100.0;
    max_share = std::max(max_share, share);
    min_share = std::min(min_share, share);
    table.add_row({fed::paper_label(type), fmt_usd(nt), fmt_usd(train_cost),
                   fmt_usd(total), fmt_pct(share)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("max non-training cost share", 97.0, max_share, "%");
  report.headline("min non-training cost share", 73.0, min_share, "%");
  report.add("mean_training_cost_usd", train_cost, "$");
  report.write(args);
  return 0;
}
