// Figure 7: FLStore vs ObjStore-Agg per-request latency over the 50-hour
// trace — ten workloads, four models, boxplot quartiles per cell.
//
// Paper headlines: average per-request latency reduction 50.75 % (55.14 s),
// maximum 99.94 % (363.5 s).
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig07");
  bench::banner("Figure 7",
                "FLStore vs ObjStore-Agg per-request latency (s), 50 h trace");

  double base_sum = 0.0, fl_sum = 0.0;
  std::size_t n = 0;
  double max_abs = 0.0, max_pct = 0.0;

  for (const auto& model : ModelZoo::evaluation_models()) {
    sim::Scenario sc(bench::paper_scenario(model, args.scale));
    const auto trace = sc.trace();
    auto fl = sim::adapt(sc.flstore());
    auto base = sim::adapt(sc.objstore_agg());
    const auto fl_run = sim::run_trace(*fl, sc.job(), trace,
                                       sc.config().duration_s,
                                       sc.config().round_interval_s);
    const auto base_run = sim::run_trace(*base, sc.job(), trace,
                                         sc.config().duration_s,
                                         sc.config().round_interval_s);
    const auto fl_by = sim::by_workload(fl_run);
    const auto base_by = sim::by_workload(base_run);

    Table table({"application", "ObjStore-Agg  med [q1,q3]",
                 "FLStore  med [q1,q3]", "mean reduction"});
    for (const auto type : fed::paper_workloads()) {
      const auto& b = base_by.at(type);
      const auto& f = fl_by.at(type);
      table.add_row({fed::paper_label(type), sim::quartile_cell(b.latency),
                     sim::quartile_cell(f.latency),
                     fmt_pct(percent_reduction(b.latency.mean(),
                                               f.latency.mean()))});
      base_sum += b.latency.sum();
      fl_sum += f.latency.sum();
      n += b.latency.size();
      for (std::size_t i = 0; i < b.latency.size(); ++i) {
        const double d = b.latency.values()[i] - f.latency.values()[i];
        max_abs = std::max(max_abs, d);
        if (b.latency.values()[i] > 0) {
          max_pct = std::max(max_pct, d / b.latency.values()[i] * 100.0);
        }
      }
    }
    std::printf("\n-- %s --\n%s", bench::panel_label(model).c_str(),
                table.to_string().c_str());
  }

  // Backend sweep on the EfficientNet panel (means are scale-invariant, so
  // a 0.2x trace keeps the full-scale run quick).
  sim::Scenario sweep_sc(
      bench::paper_scenario("efficientnet_v2_s", 0.2 * args.scale));
  const auto sweep_trace = sweep_sc.trace();
  const auto rows = bench::print_backend_sweep(sweep_sc, sweep_trace, report);
  // The paper's ordering is over its three systems; the local-SSD row is
  // this repo's extension (NVMe can undercut even warm serving on raw
  // latency — at ~300x FLStore's idle bill, see the idle column).
  const bool latency_ordering =
      bench::sweep_mean_latency(rows[0]) < bench::sweep_mean_latency(rows[2]) &&
      bench::sweep_mean_latency(rows[2]) < bench::sweep_mean_latency(rows[1]);
  std::printf(
      "\n  paper ordering (latency): FLStore cache < cloud cache < object "
      "store — %s\n",
      latency_ordering ? "holds" : "VIOLATED");

  const double avg_base = base_sum / static_cast<double>(n);
  const double avg_fl = fl_sum / static_cast<double>(n);
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("avg per-request latency reduction", 50.75,
                  percent_reduction(avg_base, avg_fl), "%");
  report.headline("avg absolute reduction per request", 55.14,
                  avg_base - avg_fl, "s");
  report.headline("max absolute reduction per request", 363.5, max_abs, "s");
  report.headline("max relative reduction per request", 99.94, max_pct, "%");
  report.add("backend_latency_ordering_holds", latency_ordering ? 1.0 : 0.0);
  report.write(args);
  return 0;
}
