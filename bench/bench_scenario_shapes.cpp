// Traffic-shape scenario engine (ISSUE 10 tentpole): the four named
// streaming presets — diurnal, flash_crowd, heterogeneous_edge,
// multi_tenant_contention — served end-to-end through ShardedStore's
// streaming open loop, with the properties each shape exists to express
// checked as verdicts.
//
// Two passes per shape over the same deterministic stream:
//
//   generator pass  a standalone ArrivalStream replica is drained to audit
//                   the offered process itself: the O(1)-memory bound
//                   (state_bytes never grows with requests or population —
//                   the bounded-allocation assertion), rate shape
//                   (peak/trough, surge ratio), device-class availability
//                   windows, and the realized per-tenant mix.
//   serving pass    serve_open_loop_stream runs the same sequence through
//                   the queued serving plane; SLO attainment per policy
//                   class and cost per training round come from its report.
//
// Verdicts (also in the JSON, gated in CI via bench/baselines/):
//   * every shape: stream state stays under 64 KiB while emitting the full
//     scenario, and SLO attainment clears the shape's floor;
//   * diurnal: offered load in the peak hour >= 2x the trough hour;
//   * flash_crowd: offered QPS inside the surge >= 4x outside;
//   * heterogeneous_edge: 1M+ client ranks actually drawn, every request
//     lands inside its device class's availability window, and the stream
//     state is byte-identical for a 1000x smaller population;
//   * multi_tenant_contention: realized tenant shares within 25% of the
//     configured 60/30/10 weights.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "serve/sharded_store.hpp"

using namespace flstore;

namespace {

constexpr std::size_t kStateBytesBound = 64 * 1024;
constexpr double kHour = 3600.0;

/// A preset instantiated: jobs built, mix bound. Jobs are stable-addressed
/// (unique_ptr) because TenantMix keeps raw pointers into them.
struct ShapeSetup {
  sim::ShapedScenario spec;
  std::vector<std::unique_ptr<fed::FLJob>> jobs;
  std::vector<serve::TenantMix> mix;
};

ShapeSetup make_setup(sim::TrafficShape shape, double scale) {
  ShapeSetup setup;
  setup.spec = sim::traffic_shape_preset(shape, scale);
  for (std::size_t i = 0; i < setup.spec.tenants.size(); ++i) {
    const auto& t = setup.spec.tenants[i];
    setup.jobs.push_back(std::make_unique<fed::FLJob>(t.job));
    setup.mix.push_back(serve::TenantMix{static_cast<JobId>(i),
                                         setup.jobs.back().get(), t.weight,
                                         {}, t.tracked_clients});
  }
  return setup;
}

/// DeviceClass availability re-derived from first principles, so the
/// generator-pass audit does not share code with the implementation under
/// test.
bool class_available(const serve::DeviceClass& cls, double period_s,
                     double t) {
  if (cls.active_start_s == cls.active_end_s) return true;
  const double pos = std::fmod(t, period_s);
  if (cls.active_start_s < cls.active_end_s) {
    return pos >= cls.active_start_s && pos < cls.active_end_s;
  }
  return pos >= cls.active_start_s || pos < cls.active_end_s;
}

/// Everything the generator pass measures while draining one replica.
struct StreamAudit {
  std::uint64_t emitted = 0;
  std::size_t peak_state_bytes = 0;
  std::vector<std::uint64_t> per_hour;    ///< offered arrivals per sim hour
  std::vector<std::uint64_t> per_tenant;
  std::vector<std::uint64_t> per_class;
  std::vector<double> class_kb_offered;   ///< payload hint * count
  ClientId max_origin = kNoClient;
  bool windows_respected = true;
  std::uint64_t in_surge = 0;             ///< arrivals inside surge windows
};

StreamAudit drain_stream(const ShapeSetup& setup) {
  serve::ArrivalStream stream(setup.spec.stream, setup.mix);
  const auto& classes = stream.device_classes();
  const auto& pop = setup.spec.stream.population;
  StreamAudit audit;
  audit.per_hour.assign(
      static_cast<std::size_t>(
          std::ceil(setup.spec.stream.duration_s / kHour)),
      0);
  audit.per_tenant.assign(setup.mix.size(), 0);
  audit.per_class.assign(std::max<std::size_t>(classes.size(), 1), 0);
  audit.class_kb_offered.assign(audit.per_class.size(), 0.0);
  audit.peak_state_bytes = stream.state_bytes();
  while (auto req = stream.next()) {
    ++audit.emitted;
    const double t = req->request.arrival_s;
    ++audit.per_hour[std::min(audit.per_hour.size() - 1,
                              static_cast<std::size_t>(t / kHour))];
    ++audit.per_tenant[static_cast<std::size_t>(req->tenant)];
    const auto cls = static_cast<std::size_t>(req->request.device_class);
    ++audit.per_class[cls];
    if (!classes.empty()) {
      audit.class_kb_offered[cls] +=
          static_cast<double>(classes[cls].payload_bytes) / 1024.0;
      if (!class_available(classes[cls], pop.availability_period_s, t)) {
        audit.windows_respected = false;
      }
    }
    audit.max_origin = std::max(audit.max_origin, req->request.origin);
    for (const auto& surge : setup.spec.stream.rate.surges) {
      if (t >= surge.start_s && t < surge.end_s) ++audit.in_surge;
    }
    audit.peak_state_bytes =
        std::max(audit.peak_state_bytes, stream.state_bytes());
  }
  return audit;
}

struct ServeOutcome {
  double attainment = 0.0;      ///< completed within the class objective
  double cost_per_round_usd = 0.0;
  double p99_s = 0.0;
  std::uint64_t rejected = 0;
};

ServeOutcome serve_shape(const ShapeSetup& setup) {
  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  serve::ShardedStoreConfig cfg;
  cfg.worker_threads = 0;  // deterministic metrics regardless of host cores
  cfg.routing = serve::Routing::kHash;
  serve::ShardedStore plane(cold, cfg);
  for (std::size_t i = 0; i < setup.jobs.size(); ++i) {
    (void)plane.add_tenant(*setup.jobs[i], {}, setup.spec.shards_per_tenant);
  }
  const auto report =
      plane.serve_open_loop_stream(setup.spec.stream, setup.mix);

  ServeOutcome outcome;
  outcome.rejected = report.rejected();
  std::uint64_t within = 0;
  std::uint64_t total = 0;
  for (const auto& rec : report.records) {
    ++total;
    if (rec.rejected) continue;
    const auto cls = fed::class_index(rec.policy_class());
    if (rec.latency_s() <= setup.spec.slo_latency_s[cls]) ++within;
  }
  outcome.attainment =
      total == 0 ? 0.0
                 : static_cast<double>(within) / static_cast<double>(total);
  const double duration = setup.spec.stream.duration_s;
  const double rounds =
      std::max(1.0, std::floor(duration / setup.spec.stream.round_interval_s));
  outcome.cost_per_round_usd =
      (report.total_cost_usd() + plane.infrastructure_cost(duration)) /
      rounds;
  outcome.p99_s = report.latency_percentile_s(99.0);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("scenario_shapes");
  bench::banner("Scenario engine (extension)",
                "Streaming traffic shapes: SLO attainment and cost/round");

  bool all_ok = true;
  const auto check = [&](const std::string& name, bool ok) {
    std::printf("  %-46s %s\n", name.c_str(), ok ? "PASS" : "FAIL");
    report.add("verdict/" + name, ok ? 1.0 : 0.0);
    all_ok = all_ok && ok;
  };

  for (const auto shape : sim::all_traffic_shapes()) {
    const auto setup = make_setup(shape, args.scale);
    const std::string name = setup.spec.name;
    std::printf("\n[%s] %.1f sim-hours, base %.2f qps, %lld clients\n",
                name.c_str(), setup.spec.stream.duration_s / kHour,
                setup.spec.stream.rate.base_qps,
                static_cast<long long>(setup.spec.stream.population.clients));

    const auto audit = drain_stream(setup);
    const auto outcome = serve_shape(setup);

    Table table({"metric", "value"});
    table.add_row({"offered requests", std::to_string(audit.emitted)});
    table.add_row({"stream state (bytes)",
                   std::to_string(audit.peak_state_bytes)});
    table.add_row({"SLO attainment", fmt(outcome.attainment, 4)});
    table.add_row({"p99 latency (s)", fmt(outcome.p99_s, 3)});
    table.add_row({"cost/round ($)",
                   fmt(outcome.cost_per_round_usd, 5)});
    std::printf("%s", table.to_string().c_str());

    report.add(name + "/requests", static_cast<double>(audit.emitted));
    report.add(name + "/stream_state_bytes",
               static_cast<double>(audit.peak_state_bytes), "B");
    report.add(name + "/slo_attainment", outcome.attainment);
    report.add(name + "/p99_s", outcome.p99_s, "s");
    report.add(name + "/cost_per_round_usd", outcome.cost_per_round_usd,
               "USD");
    report.add(name + "/rejected", static_cast<double>(outcome.rejected));

    // The bounded-allocation assertion: the full multi-hour scenario was
    // just emitted (and served) while the generator's entire state — RNG,
    // clock, samplers, class table — stayed under one small fixed bound.
    check(name + "/stream_state_bounded",
          audit.peak_state_bytes <= kStateBytesBound && audit.emitted > 0);
    check(name + "/slo_attainment_floor", outcome.attainment >= 0.95);

    switch (shape) {
      case sim::TrafficShape::kDiurnal: {
        // Peak hour 13:00 (phase + period/4), trough hour 01:00.
        const auto peak = audit.per_hour[13];
        const auto trough = audit.per_hour[1];
        const double ratio = trough == 0 ? 99.0
                                         : static_cast<double>(peak) /
                                               static_cast<double>(trough);
        report.add(name + "/peak_over_trough", ratio, "x");
        check(name + "/expresses_cycle", ratio >= 2.0);
        break;
      }
      case sim::TrafficShape::kFlashCrowd: {
        const auto& surge = setup.spec.stream.rate.surges.front();
        const double surge_span = surge.end_s - surge.start_s;
        const double calm_span = setup.spec.stream.duration_s - surge_span;
        const double surge_qps =
            static_cast<double>(audit.in_surge) / surge_span;
        const double calm_qps =
            static_cast<double>(audit.emitted - audit.in_surge) / calm_span;
        const double ratio = calm_qps == 0.0 ? 99.0 : surge_qps / calm_qps;
        report.add(name + "/surge_over_calm", ratio, "x");
        check(name + "/expresses_surge", ratio >= 4.0);
        break;
      }
      case sim::TrafficShape::kHeterogeneousEdge: {
        report.add(name + "/max_origin_rank",
                   static_cast<double>(audit.max_origin));
        check(name + "/million_client_ranks",
              audit.max_origin >= 1'000'000);
        check(name + "/windows_respected",
              audit.windows_respected &&
                  *std::min_element(audit.per_class.begin(),
                                    audit.per_class.end()) > 0);
        // Population independence: the exact same stream config over a
        // 1000x smaller population must cost the same bytes of state.
        auto small_cfg = setup.spec.stream;
        small_cfg.population.clients /= 1000;
        const serve::ArrivalStream big_stream(setup.spec.stream, setup.mix);
        const serve::ArrivalStream small_stream(small_cfg, setup.mix);
        report.add(name + "/state_bytes_small_pop",
                   static_cast<double>(small_stream.state_bytes()), "B");
        check(name + "/state_population_independent",
              big_stream.state_bytes() == small_stream.state_bytes());
        break;
      }
      case sim::TrafficShape::kMultiTenantContention: {
        double total_weight = 0.0;
        for (const auto& m : setup.mix) total_weight += m.weight;
        bool mix_ok = true;
        for (std::size_t i = 0; i < setup.mix.size(); ++i) {
          const double want = setup.mix[i].weight / total_weight;
          const double got = static_cast<double>(audit.per_tenant[i]) /
                             static_cast<double>(audit.emitted);
          report.add(name + "/tenant" + std::to_string(i) + "_share", got);
          mix_ok = mix_ok && std::abs(got - want) <= 0.25 * want;
        }
        check(name + "/mix_matches_weights", mix_ok);
        break;
      }
    }
  }

  std::printf("\nscenario shapes: %s\n", all_ok ? "PASS" : "FAIL");
  report.write(args);
  return all_ok ? 0 : 1;
}
