// Figure 14 (Appendix A.2): replication vs re-fetching under faults —
// per-workload latency and cost overheads of losing cached state (FI=1,
// everything re-fetched from the persistent store) against keeping 5
// replicas warm, plus the headline communication-cost comparison.
//
// Paper headlines: 5 replicas over 50 h / 3000 requests cost just $0.003
// (~$0.000001 per request served), up to 3000x cheaper than the
// re-computation/communication the faults otherwise cause.
//
// Second panel (this repo's extension): the same story one layer down, on
// the StorageBackend seam. A single-region cold tier re-fetches from the
// far origin store whenever its region is dark; a 3-region quorum
// deployment fails over to a near replica and read-repairs the home copy.
// Replicated latency stays ~flat under region outages; the single region
// pays the cross-region re-fetch penalty on every affected request.
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig14");
  bench::banner("Figure 14", "Replication vs re-fetching under Zipf faults");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.25 * args.scale);
  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kClustering, fed::WorkloadType::kCosineSimilarity,
      fed::WorkloadType::kIncentives, fed::WorkloadType::kMaliciousFilter,
      fed::WorkloadType::kPersonalization, fed::WorkloadType::kReputation,
      fed::WorkloadType::kSchedulingCluster,
      fed::WorkloadType::kSchedulingPerf};
  cfg.workloads = workloads;

  Rng fault_rng(77);
  FaultInjectorConfig fic;
  fic.mean_interarrival_s = 120.0;
  fic.population = 16;
  const auto faults =
      generate_fault_schedule(fic, cfg.duration_s, fault_rng);

  auto run_with_replicas = [&](int fi) {
    auto run_cfg = cfg;
    run_cfg.replicas = fi;
    sim::Scenario sc(run_cfg);
    auto adapter = sim::adapt(sc.flstore());
    sim::RunnerOptions opts;
    opts.faults = faults;
    auto run = sim::run_trace(*adapter, sc.job(), sc.trace(),
                              run_cfg.duration_s, run_cfg.round_interval_s,
                              opts);
    const double keepalive = sc.flstore().infrastructure_cost(
        run_cfg.duration_s);
    return std::make_pair(std::move(run), keepalive);
  };

  const auto [refetch_run, refetch_keepalive] = run_with_replicas(1);
  const auto [replica_run, replica_keepalive] = run_with_replicas(5);
  const auto refetch_by = sim::by_workload(refetch_run);
  const auto replica_by = sim::by_workload(replica_run);

  Table table({"application", "re-fetch lat (s)", "replicated lat (s)",
               "re-fetch $/req", "replicated $/req"});
  for (const auto type : workloads) {
    table.add_row({fed::paper_label(type),
                   fmt(refetch_by.at(type).latency.mean(), 2),
                   fmt(replica_by.at(type).latency.mean(), 2),
                   fmt_usd(refetch_by.at(type).cost.mean()),
                   fmt_usd(replica_by.at(type).cost.mean())});
  }
  std::printf("%s", table.to_string().c_str());

  // --- backend-level replication vs re-fetch ------------------------------
  bench::note(
      "\nBackend-replication sweep — FLStore in direct mode over a\n"
      "backend::ReplicatedColdStore (warm NVMe serving regions + far\n"
      "object-store origin). Region outages follow a Zipf schedule that\n"
      "hits the home region hardest; the origin never fails:");
  sim::Scenario geo_sc(cfg);
  const auto geo_trace = geo_sc.trace();
  Rng region_rng(101);
  FaultInjectorConfig region_fic;
  region_fic.mean_interarrival_s = 3600.0;  // one region outage per hour
  region_fic.population = bench::kGeoFaultDomains;
  const auto region_faults =
      generate_fault_schedule(region_fic, cfg.duration_s, region_rng);
  constexpr double kOutageDurationS = 900.0;
  const std::vector<backend::OutageWindow> no_outages;

  const auto refetch_clean =
      bench::run_geo_deployment(geo_sc, geo_trace, 1, no_outages);
  const auto refetch_dark = bench::run_geo_deployment(
      geo_sc, geo_trace, 1, bench::geo_outages(region_faults, 1,
                                               kOutageDurationS));
  const auto quorum_clean =
      bench::run_geo_deployment(geo_sc, geo_trace, 3, no_outages);
  const auto quorum_dark = bench::run_geo_deployment(
      geo_sc, geo_trace, 3, bench::geo_outages(region_faults, 3,
                                               kOutageDurationS));

  Table geo({"cold tier", "outages", "mean lat (s)", "mean $/req",
             "failover reads", "egress $", "idle $/h"});
  const auto geo_row = [&](const char* label, const char* outages,
                           const bench::GeoRow& row) {
    geo.add_row({label, outages, fmt(row.mean_latency_s, 3),
                 fmt_usd(row.mean_cost_usd),
                 std::to_string(row.failover_reads), fmt_usd(row.egress_usd),
                 fmt_usd(row.idle_usd_per_hour)});
  };
  geo_row("1 region + origin (re-fetch)", "none", refetch_clean);
  geo_row("1 region + origin (re-fetch)", "zipf", refetch_dark);
  geo_row("3-region quorum", "none", quorum_clean);
  geo_row("3-region quorum", "zipf", quorum_dark);
  std::printf("%s", geo.to_string().c_str());

  const auto degradation = [](const bench::GeoRow& dark,
                              const bench::GeoRow& clean) {
    return dark.mean_latency_s / std::max(clean.mean_latency_s, 1e-12);
  };
  const double refetch_deg = degradation(refetch_dark, refetch_clean);
  const double quorum_deg = degradation(quorum_dark, quorum_clean);
  // "~flat": the quorum deployment absorbs the outage schedule that
  // multiplies the single-region latency — it keeps at least 80% of the
  // penalty off the request path, and the single region visibly degrades.
  const bool replicated_flat =
      (quorum_dark.mean_latency_s - quorum_clean.mean_latency_s) <
      0.2 * (refetch_dark.mean_latency_s - refetch_clean.mean_latency_s);
  const bool refetch_degrades = refetch_deg > 2.0;
  std::printf(
      "\n  backend ordering: 3-region quorum ~flat under outages (x%.2f)\n"
      "  while 1-region re-fetch degrades (x%.2f) — %s\n",
      quorum_deg, refetch_deg,
      replicated_flat && refetch_degrades ? "holds" : "VIOLATED");

  report.add("backend_repl/refetch_clean_mean_latency_s",
             refetch_clean.mean_latency_s, "s");
  report.add("backend_repl/refetch_outage_mean_latency_s",
             refetch_dark.mean_latency_s, "s");
  report.add("backend_repl/quorum3_clean_mean_latency_s",
             quorum_clean.mean_latency_s, "s");
  report.add("backend_repl/quorum3_outage_mean_latency_s",
             quorum_dark.mean_latency_s, "s");
  report.add("backend_repl/refetch_degradation_x", refetch_deg, "x");
  report.add("backend_repl/quorum3_degradation_x", quorum_deg, "x");
  report.add("backend_repl/quorum3_failover_reads",
             static_cast<double>(quorum_dark.failover_reads));
  report.add("backend_repl/quorum3_egress_usd", quorum_dark.egress_usd, "$");
  report.add("backend_repl/refetch_egress_usd", refetch_dark.egress_usd,
             "$");
  report.add("backend_repl/quorum3_idle_usd_per_hour",
             quorum_dark.idle_usd_per_hour, "$/h");
  report.add("backend_repl/replicated_latency_flat",
             replicated_flat ? 1.0 : 0.0);
  report.add("backend_repl/refetch_pays_penalty",
             refetch_degrades ? 1.0 : 0.0);

  // Communication cost of the fault-induced re-fetches: the extra serving
  // dollars FI=1 pays versus the replicated deployment.
  const double refetch_comm_cost =
      refetch_run.total_serving_usd() - replica_run.total_serving_usd();
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("cost of keeping 5 replicas for 50 h", 0.003,
                  replica_keepalive, "$");
  report.headline(
      "replica cost per request served", 0.000001,
      replica_keepalive / static_cast<double>(
                              std::max<std::size_t>(
                                  1, replica_run.records.size())),
      "$");
  report.headline("re-fetch comm cost vs replica cost ratio", 3000.0,
                  refetch_comm_cost / std::max(replica_keepalive, 1e-12),
                  "x");
  report.write(args);
  return 0;
}
