// Figure 14 (Appendix A.2): replication vs re-fetching under faults —
// per-workload latency and cost overheads of losing cached state (FI=1,
// everything re-fetched from the persistent store) against keeping 5
// replicas warm, plus the headline communication-cost comparison.
//
// Paper headlines: 5 replicas over 50 h / 3000 requests cost just $0.003
// (~$0.000001 per request served), up to 3000x cheaper than the
// re-computation/communication the faults otherwise cause.
#include "bench_common.hpp"

using namespace flstore;

int main() {
  bench::banner("Figure 14", "Replication vs re-fetching under Zipf faults");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", 0.25);
  const std::vector<fed::WorkloadType> workloads = {
      fed::WorkloadType::kClustering, fed::WorkloadType::kCosineSimilarity,
      fed::WorkloadType::kIncentives, fed::WorkloadType::kMaliciousFilter,
      fed::WorkloadType::kPersonalization, fed::WorkloadType::kReputation,
      fed::WorkloadType::kSchedulingCluster, fed::WorkloadType::kSchedulingPerf};
  cfg.workloads = workloads;

  Rng fault_rng(77);
  FaultInjectorConfig fic;
  fic.mean_interarrival_s = 120.0;
  fic.population = 16;
  const auto faults =
      generate_fault_schedule(fic, cfg.duration_s, fault_rng);

  auto run_with_replicas = [&](int fi) {
    auto run_cfg = cfg;
    run_cfg.replicas = fi;
    sim::Scenario sc(run_cfg);
    auto adapter = sim::adapt(sc.flstore());
    sim::RunnerOptions opts;
    opts.faults = faults;
    auto run = sim::run_trace(*adapter, sc.job(), sc.trace(),
                              run_cfg.duration_s, run_cfg.round_interval_s,
                              opts);
    const double keepalive = sc.flstore().infrastructure_cost(
        run_cfg.duration_s);
    return std::make_pair(std::move(run), keepalive);
  };

  const auto [refetch_run, refetch_keepalive] = run_with_replicas(1);
  const auto [replica_run, replica_keepalive] = run_with_replicas(5);
  const auto refetch_by = sim::by_workload(refetch_run);
  const auto replica_by = sim::by_workload(replica_run);

  Table table({"application", "re-fetch lat (s)", "replicated lat (s)",
               "re-fetch $/req", "replicated $/req"});
  for (const auto type : workloads) {
    table.add_row({fed::paper_label(type),
                   fmt(refetch_by.at(type).latency.mean(), 2),
                   fmt(replica_by.at(type).latency.mean(), 2),
                   fmt_usd(refetch_by.at(type).cost.mean()),
                   fmt_usd(replica_by.at(type).cost.mean())});
  }
  std::printf("%s", table.to_string().c_str());

  // Communication cost of the fault-induced re-fetches: the extra serving
  // dollars FI=1 pays versus the replicated deployment.
  const double refetch_comm_cost =
      refetch_run.total_serving_usd() - replica_run.total_serving_usd();
  std::printf("\nHeadlines (paper vs measured):\n");
  sim::print_headline("cost of keeping 5 replicas for 50 h", 0.003,
                      replica_keepalive, "$");
  sim::print_headline(
      "replica cost per request served", 0.000001,
      replica_keepalive / static_cast<double>(replica_run.records.size()),
      "$");
  sim::print_headline("re-fetch comm cost vs replica cost ratio", 3000.0,
                      refetch_comm_cost / std::max(replica_keepalive, 1e-12),
                      "x");
  return 0;
}
