// Figure 9: FLStore vs Cache-Agg (SageMaker + ElastiCache) per-request
// latency (top) and cost (bottom) over 50 hours, six workloads,
// EfficientNet.
//
// Paper headlines: 64.66 % average / 84.41 % max latency reduction;
// 98.83 % average / 99.65 % max cost reduction. Cache-Agg per-request cost
// includes its share of the provisioned cache node-hours (that is what the
// paper's log-scale $ axis shows).
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig09");
  bench::banner("Figure 9",
                "FLStore vs Cache-Agg per-request latency and cost, 50 h");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", args.scale);
  cfg.workloads = fed::cacheagg_workloads();
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();

  auto fl = sim::adapt(sc.flstore());
  auto cache = sim::adapt(sc.cache_agg());
  const auto fl_run = sim::run_trace(*fl, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto ca_run = sim::run_trace(*cache, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto fl_by = sim::by_workload(fl_run);
  const auto ca_by = sim::by_workload(ca_run);

  // Amortize the provisioned services over the trace's requests, as the
  // paper's per-request cost view does.
  const double ca_infra_per_req =
      ca_run.infrastructure_usd / static_cast<double>(ca_run.records.size());
  const double fl_infra_per_req =
      fl_run.infrastructure_usd / static_cast<double>(fl_run.records.size());

  Table table({"application", "Cache-Agg lat med [q1,q3]",
               "FLStore lat med [q1,q3]", "Cache-Agg $/req", "FLStore $/req"});
  double ca_lat = 0.0, fl_lat = 0.0, ca_cost = 0.0, fl_cost = 0.0;
  double max_lat_red = 0.0, max_cost_red = 0.0;
  std::size_t n = 0;
  for (const auto type : fed::cacheagg_workloads()) {
    const auto& c = ca_by.at(type);
    const auto& f = fl_by.at(type);
    const double c_cost = c.cost.mean() + ca_infra_per_req;
    const double f_cost = f.cost.mean() + fl_infra_per_req;
    table.add_row({fed::paper_label(type), sim::quartile_cell(c.latency),
                   sim::quartile_cell(f.latency), fmt_usd(c_cost),
                   fmt_usd(f_cost)});
    ca_lat += c.latency.sum();
    fl_lat += f.latency.sum();
    ca_cost += c.cost.sum() + ca_infra_per_req * c.cost.size();
    fl_cost += f.cost.sum() + fl_infra_per_req * f.cost.size();
    n += c.latency.size();
    max_lat_red = std::max(
        max_lat_red, percent_reduction(c.latency.mean(), f.latency.mean()));
    max_cost_red = std::max(max_cost_red, percent_reduction(c_cost, f_cost));
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("avg latency reduction vs Cache-Agg", 64.66,
                  percent_reduction(ca_lat / n, fl_lat / n), "%");
  report.headline("max latency reduction vs Cache-Agg", 84.41, max_lat_red,
                  "%");
  report.headline("avg cost reduction vs Cache-Agg", 98.83,
                  percent_reduction(ca_cost / n, fl_cost / n), "%");
  report.headline("max cost reduction vs Cache-Agg", 99.65, max_cost_red, "%");
  report.write(args);
  return 0;
}
