// Figure 17 (Appendix B.2): Cache-Agg vs FLStore accumulated total time and
// total cost over 50 hours / 3000 requests, six workloads.
//
// Paper headlines: total time reduced 37.77-84.45 % (191.65 accumulated
// hours saved); total cost reduced 98.12-99.89 % ($7047.16 saved).
#include "bench_common.hpp"

using namespace flstore;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::JsonReport report("fig17");
  bench::banner("Figure 17",
                "Cache-Agg vs FLStore totals over 50 h / 3000 requests");

  auto cfg = bench::paper_scenario("efficientnet_v2_s", args.scale);
  cfg.workloads = fed::cacheagg_workloads();
  sim::Scenario sc(cfg);
  const auto trace = sc.trace();

  auto fl = sim::adapt(sc.flstore());
  auto cache = sim::adapt(sc.cache_agg());
  const auto fl_run = sim::run_trace(*fl, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto ca_run = sim::run_trace(*cache, sc.job(), trace, cfg.duration_s,
                                     cfg.round_interval_s);
  const auto fl_by = sim::by_workload(fl_run);
  const auto ca_by = sim::by_workload(ca_run);

  const double ca_infra_per_req =
      ca_run.infrastructure_usd / static_cast<double>(ca_run.records.size());
  const double fl_infra_per_req =
      fl_run.infrastructure_usd / static_cast<double>(fl_run.records.size());

  Table table({"application", "Cache-Agg time (h)", "FLStore time (h)",
               "Cache-Agg cost ($)", "FLStore cost ($)"});
  for (const auto type : fed::cacheagg_workloads()) {
    const auto& c = ca_by.at(type);
    const auto& f = fl_by.at(type);
    table.add_row(
        {fed::paper_label(type), fmt(c.latency.sum() / 3600.0, 2),
         fmt(f.latency.sum() / 3600.0, 3),
         fmt(c.cost.sum() + ca_infra_per_req * c.cost.size(), 2),
         fmt(f.cost.sum() + fl_infra_per_req * f.cost.size(), 4)});
  }
  std::printf("%s", table.to_string().c_str());

  // Backend sweep over the same cache-workload trace: accumulated time and
  // cost (idle fees included — the cloud cache's node-hours are its story).
  const auto rows = bench::print_backend_sweep(sc, trace, report);
  Table totals({"cold backend", "total time (h)",
                "serving + idle cost ($, whole window)"});
  for (const auto& row : rows) {
    const double idle_usd = row.idle_usd_per_hour * cfg.duration_s / 3600.0;
    totals.add_row({row.label, fmt(row.run.total_latency_s() / 3600.0, 3),
                    fmt(row.run.total_serving_usd() + idle_usd, 2)});
    report.add("totals/" + row.label + "/cost_usd",
               row.run.total_serving_usd() + idle_usd, "$");
  }
  std::printf("\n%s", totals.to_string().c_str());

  const double hours_saved =
      (ca_run.total_latency_s() - fl_run.total_latency_s()) / 3600.0;
  const double ca_total =
      ca_run.total_serving_usd() + ca_run.infrastructure_usd;
  const double fl_total =
      fl_run.total_serving_usd() + fl_run.infrastructure_usd;
  std::printf("\nHeadlines (paper vs measured):\n");
  report.headline("accumulated hours saved", 191.65, hours_saved, "h");
  report.headline("total cost reduction", 99.0,
                  percent_reduction(ca_total, fl_total), "%");
  report.headline("accumulated dollars saved", 7047.16, ca_total - fl_total,
                  "$");
  report.write(args);
  return 0;
}
