// Multi-tenant hosting (Appendix A): two organizations run FL jobs with
// different models and different caching needs on one FLStore deployment.
// Each tenant gets an isolated serverless cache with its own policy
// configuration; only the cold object store is shared.
//
//   ./examples/multi_tenant_hosting
#include <cstdio>

#include "common/table.hpp"
#include "core/multi_tenant.hpp"
#include "fed/fl_job.hpp"
#include "sim/calibration.hpp"

using namespace flstore;

int main() {
  ObjectStore shared_cold(sim::objstore_link(), PricingCatalog::aws());
  core::MultiTenantFLStore host(shared_cold);

  // Tenant A: a hospital consortium training EfficientNet, running
  // per-round malicious filtering (default tailored policies).
  fed::FLJobConfig cfg_a;
  cfg_a.model = "efficientnet_v2_s";
  cfg_a.pool_size = 120;
  cfg_a.clients_per_round = 10;
  cfg_a.rounds = 20;
  cfg_a.seed = 11;
  fed::FLJob job_a(cfg_a);
  const auto hospital = host.add_tenant(job_a);

  // Tenant B: a keyboard-prediction fleet on MobileNet, interested only in
  // hyperparameter tracking — it configures a wider P4 metadata window.
  fed::FLJobConfig cfg_b;
  cfg_b.model = "mobilenet_v3_small";
  cfg_b.pool_size = 200;
  cfg_b.clients_per_round = 10;
  cfg_b.rounds = 20;
  cfg_b.seed = 22;
  fed::FLJob job_b(cfg_b);
  core::FLStoreConfig fleet_cfg;
  fleet_cfg.policy.metadata_window = 20;
  const auto fleet = host.add_tenant(job_b, fleet_cfg);

  // Both jobs train concurrently; each round lands in its tenant's cache.
  for (RoundId r = 0; r < 20; ++r) {
    const double now = 60.0 * r;
    host.ingest_round(hospital, job_a.make_round(r), now);
    host.ingest_round(fleet, job_b.make_round(r), now);
  }

  Table table({"tenant", "workload", "latency (s)", "cost ($)", "result"});
  double now = 1300.0;
  fed::NonTrainingRequest filt{1, fed::WorkloadType::kMaliciousFilter, 19,
                               kNoClient, now};
  const auto a = host.serve(hospital, filt, now);
  table.add_row({"hospital", fed::paper_label(filt.type), fmt(a.latency_s, 2),
                 fmt_usd(a.cost_usd), a.output.summary});

  fed::NonTrainingRequest tune{2, fed::WorkloadType::kHyperparamTracking, 19,
                               kNoClient, now + 5.0};
  const auto b = host.serve(fleet, tune, now + 5.0);
  table.add_row({"fleet", fed::paper_label(tune.type), fmt(b.latency_s, 2),
                 fmt_usd(b.cost_usd), b.output.summary});
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nIsolation check: hospital cache holds %.2f GB on %zu function\n"
      "group(s); fleet cache holds %.3f GB on %zu — neither can read the\n"
      "other's data. Combined keep-alive for 50 h: %s.\n",
      units::to_gb(host.tenant(hospital).engine().cached_bytes()),
      host.tenant(hospital).pool().group_count(),
      units::to_gb(host.tenant(fleet).engine().cached_bytes()),
      host.tenant(fleet).pool().group_count(),
      fmt_usd(host.infrastructure_cost(units::hours(50))).c_str());
  return 0;
}
