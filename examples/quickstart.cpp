// Quickstart: stand up FLStore next to a running FL job and serve a few
// non-training requests, printing latency/cost against what the same
// requests cost on a conventional object-store aggregator.
//
//   ./examples/quickstart
#include <cstdio>

#include "baselines/aggregator_baseline.hpp"
#include "common/table.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "sim/calibration.hpp"

using namespace flstore;

int main() {
  // 1. An FL training job: 10 of 250 clients per round, EfficientNetV2-S.
  fed::FLJobConfig job_cfg;
  job_cfg.model = "efficientnet_v2_s";
  job_cfg.pool_size = 250;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 50;
  fed::FLJob job(job_cfg);

  // 2. A persistent data plane (S3/MinIO-like) shared by every system.
  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());

  // 3. FLStore with default tailored policies, and the ObjStore-Agg
  //    baseline for comparison.
  core::FLStore store(core::FLStoreConfig{}, job, cold);
  baselines::BaselineConfig base_cfg;
  base_cfg.vm_profile = sim::vm_profile();
  baselines::ObjStoreAggregator baseline(base_cfg, job, cold);

  // 4. Stream training rounds in (one per 180 s of virtual time).
  double now = 0.0;
  for (RoundId r = 0; r < job_cfg.rounds; ++r) {
    const auto record = job.make_round(r);
    store.ingest_round(record, now);
    baseline.ingest_round(record, now);
    now += 180.0;
  }

  // 5. Serve a few non-training requests against the freshest round.
  const RoundId latest = job_cfg.rounds - 1;
  const auto tracked = job.participants(latest).front();
  const fed::NonTrainingRequest requests[] = {
      {1, fed::WorkloadType::kMaliciousFilter, latest, kNoClient, now},
      {2, fed::WorkloadType::kClustering, latest, kNoClient, now + 1},
      {3, fed::WorkloadType::kInference, latest, kNoClient, now + 2},
      {4, fed::WorkloadType::kReputation, latest, tracked, now + 3},
  };

  Table table({"workload", "FLStore lat (s)", "ObjStore-Agg lat (s)",
               "FLStore cost", "ObjStore-Agg cost", "result"});
  for (const auto& req : requests) {
    const auto mine = store.serve(req, req.arrival_s);
    auto base_req = req;
    base_req.id += 100;
    const auto theirs = baseline.serve(base_req, req.arrival_s);
    table.add_row({fed::paper_label(req.type), fmt(mine.latency_s, 2),
                   fmt(theirs.latency_s, 2), fmt_usd(mine.cost_usd),
                   fmt_usd(theirs.cost_usd), mine.output.summary});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nFLStore served every request from function memory next to the\n"
      "compute (hits: %llu, misses: %llu); the baseline shipped ~%.1f GB\n"
      "across the network instead.\n",
      static_cast<unsigned long long>(store.engine().hits()),
      static_cast<unsigned long long>(store.engine().misses()),
      units::to_gb(4 * 10 * job.model().object_bytes));
  return 0;
}
