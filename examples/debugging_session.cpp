// FedDebug-style post-training debugging session (the P2/P3 story of §2.1).
//
// A model regression is reported after training finished. The operator
// replays differential tests round by round to locate when a poisoner
// slipped in, then traces that client's lineage across its participation
// history — all served by FLStore long after the aggregator would have been
// torn down.
//
//   ./examples/debugging_session
#include <cstdio>

#include "common/table.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "fed/trace.hpp"
#include "sim/calibration.hpp"

using namespace flstore;

int main() {
  fed::FLJobConfig job_cfg;
  job_cfg.model = "resnet18";
  job_cfg.pool_size = 120;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 40;
  job_cfg.malicious_fraction = 0.08;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  core::FLStore store(core::FLStoreConfig{}, job, cold);

  // Training already happened; FLStore has the full history in its cold
  // store, with only the tailored working set warm.
  for (RoundId r = 0; r < job_cfg.rounds; ++r) {
    store.ingest_round(job.make_round(r), 180.0 * r);
  }
  double now = 180.0 * job_cfg.rounds;
  RequestId next_id = 1;

  // Phase 1: sweep the last 10 rounds with differential debugging; the
  // P2 policy bulk-fetches each round once and prefetches the next, so
  // only the first replayed round pays a cold-store trip.
  std::printf("== Phase 1: differential testing over the last 10 rounds ==\n");
  Table sweep({"round", "suspect", "deviation", "latency (s)", "misses"});
  ClientId suspect = kNoClient;
  double worst_deviation = -1.0;
  for (RoundId r = job_cfg.rounds - 10; r < job_cfg.rounds; ++r) {
    fed::NonTrainingRequest req{next_id++, fed::WorkloadType::kDebugging, r,
                                kNoClient, now};
    const auto res = store.serve(req, now);
    now += 5.0;
    const auto round_suspect =
        res.output.selected.empty() ? kNoClient : res.output.selected.front();
    if (res.output.scalar > worst_deviation) {
      worst_deviation = res.output.scalar;
      suspect = round_suspect;
    }
    sweep.add_row({std::to_string(r), std::to_string(round_suspect),
                   fmt(res.output.scalar, 3), fmt(res.latency_s, 2),
                   std::to_string(res.misses)});
  }
  std::printf("%s", sweep.to_string().c_str());

  // Phase 2: lineage of the final suspect across its participation history
  // (P3: each request prefetches the next participation round).
  std::printf("\n== Phase 2: provenance trail of client %d ==\n", suspect);
  Table trail({"round", "lineage link", "latency (s)", "misses"});
  const auto p3 = fed::table2_p3_trace(suspect, 8, job);
  for (auto req : p3) {
    req.id = next_id++;
    const auto res = store.serve(req, now);
    now += 2.0;
    trail.add_row({std::to_string(req.round), fmt(res.output.scalar, 0),
                   fmt(res.latency_s, 2), std::to_string(res.misses)});
  }
  std::printf("%s", trail.to_string().c_str());

  const bool truly_malicious =
      suspect != kNoClient && job.client(suspect).malicious();
  std::printf(
      "\nVerdict: client %d is %s (ground truth). Cache served %llu of %llu"
      " accesses warm.\n",
      suspect, truly_malicious ? "a planted poisoner" : "clean",
      static_cast<unsigned long long>(store.engine().hits()),
      static_cast<unsigned long long>(store.engine().hits() +
                                      store.engine().misses()));
  return 0;
}
