// Live non-training pipeline during training (the Fig-6 workflow).
//
// While a job trains, every new round triggers the per-round pipeline the
// paper's motivation describes: filter poisoners, schedule the next round's
// clients, and refresh the served model — all against the round that the
// Cache Engine write-allocated moments earlier.
//
//   ./examples/live_pipeline
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "sim/calibration.hpp"

using namespace flstore;

int main() {
  fed::FLJobConfig job_cfg;
  job_cfg.model = "efficientnet_v2_s";
  job_cfg.pool_size = 200;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 25;
  job_cfg.malicious_fraction = 0.1;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  core::FLStore store(core::FLStoreConfig{}, job, cold);

  RequestId next_id = 1;
  SampleSet pipeline_latency;
  std::size_t flagged_total = 0;
  SampleSet hit_rate;

  Table table({"round", "flagged", "scheduled tier size", "served model",
               "pipeline latency (s)"});
  for (RoundId r = 0; r < job_cfg.rounds; ++r) {
    const double round_time = sim::kRoundIntervalS * r;
    store.ingest_round(job.make_round(r), round_time);

    // The per-round pipeline fires right after aggregation.
    double t = round_time + 1.0;
    double latency = 0.0;

    fed::NonTrainingRequest filter{next_id++,
                                   fed::WorkloadType::kMaliciousFilter, r,
                                   kNoClient, t};
    const auto f = store.serve(filter, t);
    latency += f.latency_s;
    flagged_total += f.output.selected.size();

    fed::NonTrainingRequest sched{next_id++,
                                  fed::WorkloadType::kSchedulingCluster, r,
                                  kNoClient, t + f.latency_s};
    const auto s = store.serve(sched, t + f.latency_s);
    latency += s.latency_s;

    fed::NonTrainingRequest infer{next_id++, fed::WorkloadType::kInference, r,
                                  kNoClient, t + latency};
    const auto i = store.serve(infer, t + latency);
    latency += i.latency_s;

    pipeline_latency.add(latency);
    const auto accesses = f.hits + f.misses + s.hits + s.misses + i.hits +
                          i.misses;
    hit_rate.add(accesses == 0 ? 1.0
                               : static_cast<double>(f.hits + s.hits + i.hits) /
                                     static_cast<double>(accesses));
    if (r % 5 == 0) {
      table.add_row({std::to_string(r), std::to_string(f.output.selected.size()),
                     std::to_string(s.output.selected.size()),
                     i.output.summary.substr(0, 30), fmt(latency, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  const auto lat = pipeline_latency.summary();
  std::printf(
      "\nPer-round pipeline latency: median %.2f s (q1 %.2f, q3 %.2f) — the\n"
      "whole pipeline fits comfortably inside the %.0f s round interval.\n"
      "Mean warm-hit rate: %.1f%%. Flagged %zu poisoned updates in total.\n",
      lat.median, lat.q1, lat.q3, sim::kRoundIntervalS,
      hit_rate.mean() * 100.0, flagged_total);
  return 0;
}
