// Post-training incentive audit (the §2.1 incentivization workload).
//
// After a 30-round job, an auditor settles per-round payouts, checks that
// no planted poisoner was ever paid, and builds reputations for the most
// active clients. Everything runs on FLStore's serverless cache — no
// aggregator VM needs to exist anymore.
//
//   ./examples/incentive_audit
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "core/flstore.hpp"
#include "fed/fl_job.hpp"
#include "sim/calibration.hpp"

using namespace flstore;

int main() {
  fed::FLJobConfig job_cfg;
  job_cfg.model = "mobilenet_v3_small";
  job_cfg.pool_size = 100;
  job_cfg.clients_per_round = 10;
  job_cfg.rounds = 30;
  fed::FLJob job(job_cfg);

  ObjectStore cold(sim::objstore_link(), PricingCatalog::aws());
  core::FLStore store(core::FLStoreConfig{}, job, cold);
  for (RoundId r = 0; r < job_cfg.rounds; ++r) {
    store.ingest_round(job.make_round(r), 60.0 * r);
  }

  double now = 60.0 * job_cfg.rounds;
  RequestId next_id = 1;
  std::map<ClientId, double> total_payout;
  std::map<ClientId, int> participations;
  double total_latency = 0.0;
  double total_cost = 0.0;
  std::size_t poisoner_payouts = 0;

  // Settle every round. The P2 policy walks the rounds sequentially —
  // exactly the iterative pattern its prefetching is built for.
  for (RoundId r = 0; r < job_cfg.rounds; ++r) {
    fed::NonTrainingRequest req{next_id++, fed::WorkloadType::kIncentives, r,
                                kNoClient, now};
    const auto res = store.serve(req, now);
    now += 3.0;
    total_latency += res.latency_s;
    total_cost += res.cost_usd;
    for (std::size_t i = 0; i < res.output.clients.size(); ++i) {
      const auto c = res.output.clients[i];
      total_payout[c] += res.output.per_client[i];
      ++participations[c];
      if (res.output.per_client[i] > 0.0 && job.client(c).malicious()) {
        ++poisoner_payouts;
      }
    }
  }

  // Top earners table.
  std::vector<std::pair<ClientId, double>> ranked(total_payout.begin(),
                                                  total_payout.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"client", "rounds", "payout units", "malicious?"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const auto [client, payout] = ranked[i];
    table.add_row({std::to_string(client),
                   std::to_string(participations[client]), fmt(payout, 1),
                   job.client(client).malicious() ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nSettled %d rounds in %.1f s of serving time for %s total; planted"
      " poisoners received a payout %zu times (expected 0).\n",
      job_cfg.rounds, total_latency, fmt_usd(total_cost).c_str(),
      poisoner_payouts);
  return poisoner_payouts == 0 ? 0 : 1;
}
