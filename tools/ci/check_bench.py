#!/usr/bin/env python3
"""Perf-regression gate: compare BENCH_*.json artifacts against baselines.

Every bench emits ``BENCH_<name>.json`` (see bench/bench_common.hpp) with a
flat ``metrics`` list of ``{name, value, unit}``. Baselines live in
``bench/baselines/<name>.json`` and name the subset of metrics that is
stable enough to gate on (verdicts and simulated-time results — never raw
wall-clock ops/sec, which vary with runner hardware; see
bench/baselines/README.md for the tolerance policy).

Baseline schema::

    {
      "artifact": "BENCH_hotpath.json",
      "checks": [
        {"metric": "verdict/deferred_ledger_exact",
         "value": 1.0,          # expected value
         "direction": "min",    # "min" | "max" | "eq"
         "rel_tol": 0.0}        # relative tolerance on the bound
      ]
    }

Directions: ``min`` fails when measured < value*(1-rel_tol); ``max`` fails
when measured > value*(1+rel_tol); ``eq`` fails outside value*(1±rel_tol).

Usage: ``check_bench.py [--baselines DIR] [--artifacts DIR]``. Prints a
delta table (also appended to ``$GITHUB_STEP_SUMMARY`` when set) and exits
nonzero on any regression or missing metric/artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_metrics(artifact: Path) -> dict[str, float]:
    data = json.loads(artifact.read_text())
    return {m["name"]: float(m["value"]) for m in data.get("metrics", [])}


def check_one(check: dict, metrics: dict[str, float]) -> tuple[str, str, str]:
    """Returns (status, measured_str, bound_str) for one baseline check."""
    metric = check["metric"]
    expected = float(check["value"])
    direction = check.get("direction", "eq")
    rel_tol = float(check.get("rel_tol", 0.0))
    if metric not in metrics:
        return "MISSING", "-", f"{direction} {expected:g}"
    measured = metrics[metric]
    lo = expected - abs(expected) * rel_tol
    hi = expected + abs(expected) * rel_tol
    if direction == "min":
        ok, bound = measured >= lo, f">= {lo:g}"
    elif direction == "max":
        ok, bound = measured <= hi, f"<= {hi:g}"
    elif direction == "eq":
        ok, bound = lo <= measured <= hi, f"in [{lo:g}, {hi:g}]"
    else:
        return "BADDIR", f"{measured:g}", direction
    return ("OK" if ok else "FAIL"), f"{measured:g}", bound


def render_table(rows: list[tuple[str, ...]]) -> str:
    headers = ("bench", "metric", "measured", "required", "status")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt_row(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt_row(headers), fmt_row(tuple("-" * w for w in widths))]
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def render_markdown(rows: list[tuple[str, ...]]) -> str:
    lines = [
        "### Perf gate",
        "",
        "| bench | metric | measured | required | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    for bench, metric, measured, bound, status in rows:
        icon = "✅" if status == "OK" else "❌"
        lines.append(
            f"| {bench} | `{metric}` | {measured} | {bound} | {icon} {status} |")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", type=Path,
                        default=REPO_ROOT / "bench" / "baselines")
    parser.add_argument("--artifacts", type=Path, default=Path("."),
                        help="directory holding the freshly-run BENCH_*.json")
    args = parser.parse_args()

    baselines = sorted(p for p in args.baselines.glob("*.json"))
    if not baselines:
        print(f"error: no baselines found under {args.baselines}",
              file=sys.stderr)
        return 1

    rows: list[tuple[str, ...]] = []
    failures = 0
    for baseline_path in baselines:
        baseline = json.loads(baseline_path.read_text())
        artifact = args.artifacts / baseline["artifact"]
        bench = baseline_path.stem
        if not artifact.exists():
            rows.append((bench, "(artifact)", "-", baseline["artifact"],
                         "MISSING"))
            failures += 1
            continue
        metrics = load_metrics(artifact)
        for check in baseline.get("checks", []):
            status, measured, bound = check_one(check, metrics)
            rows.append((bench, check["metric"], measured, bound, status))
            failures += status != "OK"

    print(render_table(rows))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(render_markdown(rows) + "\n")

    if failures:
        print(f"\nperf gate: {failures} check(s) failed", file=sys.stderr)
        return 1
    print(f"\nperf gate: all {len(rows)} check(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
