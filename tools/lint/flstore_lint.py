#!/usr/bin/env python3
"""flstore_lint — domain-invariant linter for the FLStore reproduction.

Machine-checks the repo conventions that neither the compiler nor
clang-tidy can express:

  wall-clock          src/ and bench/ must not read the wall clock or libc
                      rand (system_clock, steady_clock, time(), rand(), ...)
                      outside src/common/ — results must be pure functions
                      of simulated time, or determinism tests lie.
  no-cout             src/ must not write to std::cout/std::cerr directly;
                      diagnostics go through common/log (level-gated, one
                      line per fprintf, never interleaved).
  bench-json          every bench/fig*.cpp must accept the common CLI
                      (--scale/--json/--trace) by calling bench::parse_args,
                      so CI can harvest BENCH_*.json artifacts uniformly.
  mutex-annotation    src/ outside src/common/ must not declare raw
                      std::mutex / std::shared_mutex members (use the
                      annotated flstore::Mutex / flstore::SharedMutex
                      shims), and every (Shared)Mutex member
                      must appear in at least one thread-safety annotation
                      (GUARDED_BY / PT_GUARDED_BY / REQUIRES / EXCLUDES /
                      ACQUIRE / RELEASE) in the same file — an unannotated
                      mutex is invisible to -Wthread-safety.
  test-registration   every *_test.cpp must live under tests/ (that is the
                      tree tests/CMakeLists.txt glob-registers with ctest);
                      a test file anywhere else would build nowhere and
                      silently never run.
  baseline-artifact   every bench/baselines/*.json must name an artifact
                      some bench source actually emits (a JsonReport("x")
                      producing BENCH_x.json) — a baseline for a renamed or
                      deleted bench would gate nothing, silently.

Suppression syntax (same line or the line above the finding):

    // flstore-lint: allow(<rule>) -- <justification>

The justification is mandatory; an allow() without one is itself a finding.

Usage: python3 tools/lint/flstore_lint.py [--root REPO_ROOT]
Exit status 0 = clean, 1 = findings (printed as file:line: [rule] message).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SUPPRESS_RE = re.compile(
    r"//\s*flstore-lint:\s*allow\(([a-z-]+)\)\s*(--\s*(.*))?")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
    r"|\bstd::time\s*\(|\brand\s*\(\s*\)|\bsrand\s*\(")

COUT_RE = re.compile(r"std::(cout|cerr)\b")

RAW_MUTEX_RE = re.compile(r"\bstd::(shared_mutex|recursive_mutex|mutex)\b")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:flstore::)?(?:Shared)?Mutex\s+(\w+)\s*;")

ANNOTATION_MACROS = (
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
    "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED", "EXCLUDES", "RETURN_CAPABILITY",
)

# The annotation layer itself declares the primitives it annotates.
SHIM_FILES = {"src/common/mutex.hpp", "src/common/thread_annotations.hpp"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line: str) -> str:
    """Drop a // comment, ignoring // inside string literals (good enough
    for this codebase: no multi-line raw strings on lint-relevant lines)."""
    out, in_str, i = [], False, 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        if not in_str and ch == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def suppressed(lines: list[str], idx: int, rule: str,
               findings: list[Finding], path: str) -> bool:
    """True when line idx (0-based) carries or follows an allow(rule)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = SUPPRESS_RE.search(lines[probe])
        if m and m.group(1) == rule:
            if not (m.group(3) or "").strip():
                findings.append(Finding(
                    path, probe + 1, rule,
                    "allow() without a justification — write "
                    "'// flstore-lint: allow(%s) -- <why>'" % rule))
            return True
    return False


def iter_sources(root: pathlib.Path, *subdirs: str):
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                yield path


def check_wall_clock(root: pathlib.Path, findings: list[Finding]) -> None:
    for path in iter_sources(root, "src", "bench"):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/common/"):
            continue  # the one place allowed to define time utilities
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, raw in enumerate(lines):
            code = strip_line_comment(raw)
            if WALL_CLOCK_RE.search(code) and not suppressed(
                    lines, i, "wall-clock", findings, rel):
                findings.append(Finding(
                    rel, i + 1, "wall-clock",
                    "wall-clock/rand outside src/common/ breaks sim-time "
                    "determinism (pass `now` in, or use common/rng.hpp)"))


def check_no_cout(root: pathlib.Path, findings: list[Finding]) -> None:
    for path in iter_sources(root, "src"):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, raw in enumerate(lines):
            code = strip_line_comment(raw)
            if COUT_RE.search(code) and not suppressed(
                    lines, i, "no-cout", findings, rel):
                findings.append(Finding(
                    rel, i + 1, "no-cout",
                    "library code must log via common/log.hpp, not "
                    "std::cout/std::cerr"))


def check_bench_json(root: pathlib.Path, findings: list[Finding]) -> None:
    bench = root / "bench"
    if not bench.is_dir():
        return
    sources = sorted(bench.glob("fig*.cpp")) + sorted(bench.glob("bench_*.cpp"))
    for path in sources:
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        if "parse_args" not in text:
            findings.append(Finding(
                rel, 1, "bench-json",
                "bench must call bench::parse_args(argc, argv) so "
                "--json/--scale work and CI can harvest its artifact"))


def check_mutex_annotation(root: pathlib.Path,
                           findings: list[Finding]) -> None:
    for path in iter_sources(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel in SHIM_FILES:
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        text_code = "\n".join(strip_line_comment(l) for l in lines)
        in_common = rel.startswith("src/common/")
        for i, raw in enumerate(lines):
            code = strip_line_comment(raw)
            if not in_common and RAW_MUTEX_RE.search(code):
                if not suppressed(lines, i, "mutex-annotation", findings, rel):
                    findings.append(Finding(
                        rel, i + 1, "mutex-annotation",
                        "raw std::mutex is invisible to -Wthread-safety; "
                        "use flstore::Mutex (common/mutex.hpp)"))
                continue
            m = MUTEX_MEMBER_RE.match(code)
            if m:
                name = m.group(1)
                covered = any(
                    re.search(r"\b%s\s*\(\s*%s\s*[),]" % (macro,
                                                          re.escape(name)),
                              text_code)
                    for macro in ANNOTATION_MACROS)
                if not covered and not suppressed(
                        lines, i, "mutex-annotation", findings, rel):
                    findings.append(Finding(
                        rel, i + 1, "mutex-annotation",
                        f"Mutex member '{name}' appears in no thread-safety "
                        "annotation — nothing is proven about it; add "
                        "GUARDED_BY/REQUIRES/EXCLUDES or suppress with a "
                        "justification"))


def check_test_registration(root: pathlib.Path,
                            findings: list[Finding]) -> None:
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.is_file() or "GLOB_RECURSE" not in cmake.read_text(
            encoding="utf-8"):
        findings.append(Finding(
            "tests/CMakeLists.txt", 1, "test-registration",
            "expected the GLOB_RECURSE *_test.cpp registration that feeds "
            "gtest_discover_tests"))
        return
    for path in sorted(root.rglob("*_test.cpp")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith(("build", ".")):
            continue
        if not rel.startswith("tests/"):
            findings.append(Finding(
                rel, 1, "test-registration",
                "test files must live under tests/ — anywhere else the "
                "ctest glob never sees them and they silently never run"))


def check_baseline_artifact(root: pathlib.Path,
                            findings: list[Finding]) -> None:
    baselines = root / "bench" / "baselines"
    bench = root / "bench"
    if not baselines.is_dir() or not bench.is_dir():
        return
    import json
    # Matches both the declaration form `JsonReport report("x")` and a
    # direct construction `JsonReport("x")`.
    report_re = re.compile(r'JsonReport(?:\s+\w+)?\s*\(\s*"([^"]+)"\s*\)')
    emitted = set()
    for path in sorted(bench.glob("*.cpp")):
        emitted.update(report_re.findall(path.read_text(encoding="utf-8")))
    for path in sorted(baselines.glob("*.json")):
        rel = path.relative_to(root).as_posix()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            findings.append(Finding(
                rel, 1, "baseline-artifact", f"unparsable JSON: {exc}"))
            continue
        artifact = data.get("artifact", "")
        m = re.fullmatch(r"BENCH_(.+)\.json", artifact)
        if not m:
            findings.append(Finding(
                rel, 1, "baseline-artifact",
                f"artifact '{artifact}' does not match BENCH_<name>.json"))
            continue
        if m.group(1) not in emitted:
            findings.append(Finding(
                rel, 1, "baseline-artifact",
                f"no bench source emits JsonReport(\"{m.group(1)}\") — this "
                "baseline gates an artifact nothing produces"))


CHECKS = {
    "wall-clock": check_wall_clock,
    "no-cout": check_no_cout,
    "bench-json": check_bench_json,
    "mutex-annotation": check_mutex_annotation,
    "test-registration": check_test_registration,
    "baseline-artifact": check_baseline_artifact,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in CHECKS:
            print(rule)
        return 0

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parents[2]

    findings: list[Finding] = []
    for check in CHECKS.values():
        check(root, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"\nflstore_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("flstore_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
